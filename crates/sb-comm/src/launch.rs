//! Launching communicators: scoped (blocking) and detached (joinable)
//! thread-per-rank execution.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::collective::Communicator;
use crate::error::{CommError, CommResult};

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f` on `nranks` thread-ranks sharing one fresh communicator and
/// blocks until all ranks return. Results are ordered by rank.
///
/// This is the moral equivalent of `mpirun -n <nranks> <f>`.
pub fn launch<T, F>(nranks: usize, f: F) -> CommResult<Vec<T>>
where
    T: Send,
    F: Fn(Communicator) -> T + Send + Sync,
{
    launch_named("ranks", nranks, f)
}

/// [`launch`] with a thread-name prefix, which makes panics and profiles
/// attributable to a component ("select/3" and so on).
pub fn launch_named<T, F>(name: &str, nranks: usize, f: F) -> CommResult<Vec<T>>
where
    T: Send,
    F: Fn(Communicator) -> T + Send + Sync,
{
    if nranks == 0 {
        return Err(CommError::ZeroRanks);
    }
    let comms = Communicator::create(nranks);
    let f = &f;
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                std::thread::Builder::new()
                    .name(format!("{name}/{rank}"))
                    .spawn_scoped(scope, move || f(comm))
                    .expect("spawning a rank thread")
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join().map_err(|payload| CommError::RankPanicked {
                    rank,
                    message: panic_message(payload),
                })
            })
            .collect::<CommResult<Vec<T>>>()
    })?;
    Ok(results)
}

/// A detached, joinable launch of one communicator — the building block the
/// SmartBlock workflow runtime uses to run many components concurrently.
pub struct LaunchHandle<T> {
    name: String,
    joins: Vec<JoinHandle<T>>,
}

impl<T: Send + 'static> LaunchHandle<T> {
    /// Spawns `nranks` detached thread-ranks over a fresh communicator.
    ///
    /// Unlike [`launch`], the closure must be `'static`: each rank thread
    /// holds an `Arc` of it for the duration of the run.
    pub fn spawn<F>(name: &str, nranks: usize, f: F) -> CommResult<LaunchHandle<T>>
    where
        F: Fn(Communicator) -> T + Send + Sync + 'static,
    {
        if nranks == 0 {
            return Err(CommError::ZeroRanks);
        }
        let f = Arc::new(f);
        let comms = Communicator::create(nranks);
        let joins = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let f = Arc::clone(&f);
                std::thread::Builder::new()
                    .name(format!("{name}/{rank}"))
                    .spawn(move || {
                        // Catch and re-raise so the join side can report the
                        // rank id alongside the panic message.
                        match std::panic::catch_unwind(AssertUnwindSafe(|| f(comm))) {
                            Ok(v) => v,
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    })
                    .expect("spawning a rank thread")
            })
            .collect();
        Ok(LaunchHandle {
            name: name.to_string(),
            joins,
        })
    }

    /// The launch name this handle was created under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of ranks still attached to this handle.
    pub fn nranks(&self) -> usize {
        self.joins.len()
    }

    /// Blocks until all ranks finish; results are ordered by rank.
    pub fn join(self) -> CommResult<Vec<T>> {
        self.joins
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join().map_err(|payload| CommError::RankPanicked {
                    rank,
                    message: panic_message(payload),
                })
            })
            .collect()
    }

    /// Blocks until *every* rank finishes and returns one result per rank,
    /// panicked ranks included.
    ///
    /// Unlike [`LaunchHandle::join`] — which stops at the first panicked
    /// rank and leaves the remaining threads detached — this always reaps
    /// the whole group. The workflow supervisor depends on that: before it
    /// restarts a component it must know no stale rank of the failed
    /// incarnation is still touching the streams.
    pub fn join_all(self) -> Vec<CommResult<T>> {
        self.joins
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join().map_err(|payload| CommError::RankPanicked {
                    rank,
                    message: panic_message(payload),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_zero_ranks_is_an_error() {
        let r = launch(0, |_comm| ());
        assert_eq!(r.unwrap_err(), CommError::ZeroRanks);
    }

    #[test]
    fn launch_returns_results_in_rank_order() {
        let out = launch(6, |comm| comm.rank() * comm.rank()).unwrap();
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25]);
    }

    #[test]
    fn rank_panic_is_reported_with_rank_and_message() {
        let r = launch(3, |comm| {
            if comm.rank() == 2 {
                panic!("boom in rank two");
            }
        });
        match r {
            Err(CommError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 2);
                assert!(message.contains("boom"), "message was: {message}");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn detached_launch_joins_with_results() {
        let h = LaunchHandle::spawn("detached-test", 4, |comm| {
            comm.allreduce(1u32, |a, b| a + b)
        })
        .unwrap();
        assert_eq!(h.name(), "detached-test");
        assert_eq!(h.nranks(), 4);
        let out = h.join().unwrap();
        assert_eq!(out, vec![4, 4, 4, 4]);
    }

    #[test]
    fn two_detached_communicators_run_concurrently() {
        // Two separate communicators must not share collective state: run
        // them simultaneously with different sizes and check isolation.
        let a =
            LaunchHandle::spawn("a", 3, |comm| comm.allreduce(comm.rank(), |x, y| x + y)).unwrap();
        let b =
            LaunchHandle::spawn("b", 5, |comm| comm.allreduce(comm.rank(), |x, y| x + y)).unwrap();
        assert!(a.join().unwrap().iter().all(|&v| v == 3));
        assert!(b.join().unwrap().iter().all(|&v| v == 10));
    }
}
