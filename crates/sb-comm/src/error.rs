//! Error types for the rank runtime.

use std::fmt;

/// Errors surfaced by the rank runtime.
///
/// Most communicator misuse (rank out of range, mismatched collective
/// payloads) panics, mirroring how MPI aborts the job; `CommError` covers
/// conditions a caller can reasonably handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A rank thread panicked; the payload's `Display` is preserved when the
    /// panic carried a string.
    RankPanicked {
        /// Rank whose thread panicked.
        rank: usize,
        /// Stringified panic payload, if one could be extracted.
        message: String,
    },
    /// `launch` was asked for zero ranks.
    ZeroRanks,
    /// A peer's endpoint disappeared mid-`recv` (its thread exited).
    PeerGone {
        /// The rank whose message was awaited.
        from: usize,
    },
    /// A workflow was refused before launch: static validation found
    /// issues that would deadlock or crash it. Each entry is one rendered
    /// diagnostic.
    InvalidWorkflow {
        /// Human-readable diagnostics, one per issue.
        issues: Vec<String>,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            CommError::ZeroRanks => write!(f, "cannot launch a communicator with zero ranks"),
            CommError::PeerGone { from } => {
                write!(
                    f,
                    "peer rank {from} exited before sending an awaited message"
                )
            }
            CommError::InvalidWorkflow { issues } => {
                write!(f, "workflow failed static validation:")?;
                for issue in issues {
                    write!(f, "\n  - {issue}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Convenience alias used throughout the crate.
pub type CommResult<T> = Result<T, CommError>;
