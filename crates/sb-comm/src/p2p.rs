//! Tagged point-to-point messaging between the ranks of a communicator.
//!
//! Each rank owns one unbounded MPSC queue; every peer holds a sender clone.
//! `(source, tag)` matching is implemented with a small per-rank stash of
//! packets that arrived out of order — the same structure as an MPI
//! unexpected-message queue.

use std::any::Any;
use std::cell::RefCell;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::collective::Stash;

/// One in-flight message.
pub(crate) struct Packet {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    pub(crate) payload: Box<dyn Any + Send>,
}

/// The per-rank message endpoint: senders to every peer plus this rank's
/// receive queue and unexpected-message stash.
pub(crate) struct Endpoint {
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    stash: RefCell<Stash>,
}

impl Endpoint {
    /// Builds the fully connected mesh of endpoints for `size` ranks.
    pub(crate) fn create(size: usize) -> Vec<Endpoint> {
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .map(|receiver| Endpoint {
                senders: senders.clone(),
                receiver,
                stash: RefCell::new(Stash::new()),
            })
            .collect()
    }

    pub(crate) fn send(&self, src: usize, dst: usize, tag: u64, payload: Box<dyn Any + Send>) {
        // The send only fails if the destination endpoint was dropped, i.e.
        // the peer rank already exited; mirroring MPI, that is a usage error
        // in the component, not a recoverable condition.
        self.senders[dst]
            .send(Packet { src, tag, payload })
            .unwrap_or_else(|_| panic!("send: rank {dst} exited before receiving tag {tag}"));
    }

    pub(crate) fn recv(&self, src: usize, tag: u64) -> Packet {
        if let Some(p) = self.take_stashed(|p| p.src == src && p.tag == tag) {
            return p;
        }
        loop {
            let packet = self.receiver.recv().unwrap_or_else(|_| {
                panic!("recv: all peers exited while awaiting rank {src} tag {tag}")
            });
            if packet.src == src && packet.tag == tag {
                return packet;
            }
            self.stash.borrow_mut().push_back(packet);
        }
    }

    pub(crate) fn recv_any(&self, tag: u64) -> Packet {
        if let Some(p) = self.take_stashed(|p| p.tag == tag) {
            return p;
        }
        loop {
            let packet = self
                .receiver
                .recv()
                .unwrap_or_else(|_| panic!("recv_any: all peers exited while awaiting tag {tag}"));
            if packet.tag == tag {
                return packet;
            }
            self.stash.borrow_mut().push_back(packet);
        }
    }

    pub(crate) fn try_recv(&self, src: usize, tag: u64) -> Option<Packet> {
        if let Some(p) = self.take_stashed(|p| p.src == src && p.tag == tag) {
            return Some(p);
        }
        while let Ok(packet) = self.receiver.try_recv() {
            if packet.src == src && packet.tag == tag {
                return Some(packet);
            }
            self.stash.borrow_mut().push_back(packet);
        }
        None
    }

    fn take_stashed(&self, matches: impl Fn(&Packet) -> bool) -> Option<Packet> {
        let mut stash = self.stash.borrow_mut();
        let idx = stash.iter().position(matches)?;
        stash.remove(idx)
    }
}
