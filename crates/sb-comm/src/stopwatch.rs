//! A tiny wall-clock stopwatch used by components and benches to report
//! per-timestep and end-to-end times.

use std::time::{Duration, Instant};

/// Accumulating stopwatch with lap support.
///
/// ```
/// use sb_comm::Stopwatch;
/// let mut sw = Stopwatch::started();
/// let lap = sw.lap();
/// assert!(lap >= std::time::Duration::ZERO);
/// assert!(sw.elapsed() >= lap);
/// ```
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Instant,
    last_lap: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn started() -> Self {
        let now = Instant::now();
        Stopwatch {
            start: now,
            last_lap: now,
        }
    }

    /// Time since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time since the stopwatch was started, in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Time since the previous `lap()` (or start), and resets the lap mark.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.last_lap;
        self.last_lap = now;
        d
    }

    /// Restarts both the total and lap clocks.
    pub fn restart(&mut self) {
        let now = Instant::now();
        self.start = now;
        self.last_lap = now;
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::started()
    }
}
