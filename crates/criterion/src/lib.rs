//! A minimal, API-compatible stand-in for the `criterion` crate, so the
//! `sb-bench` benchmark targets build and run without network access.
//!
//! Behavioural contract: each registered benchmark closure is timed over a
//! handful of iterations and one summary line is printed per benchmark —
//! enough to smoke-test the bench harnesses and get rough numbers, with
//! none of the statistical machinery of the real crate. Timing knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`) are accepted and
//! used to bound how many iterations run.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declares what one iteration of a benchmark processes, for derived
/// throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// A benchmark's identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher<'a> {
    samples: usize,
    budget: Duration,
    result: &'a mut Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine` over up to `sample_size` iterations (stopping early
    /// once the measurement-time budget is spent) and records the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iters = 0u64;
        for _ in 0..self.samples.max(1) {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        *self.result = Some((start.elapsed(), iters));
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark driver handed to every target function.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.settings.sample_size = n;
        self
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.settings.measurement_time = d;
        self
    }

    /// Accepted for compatibility; the stand-in does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Accepted for compatibility; the stand-in does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut result = None;
        let mut b = Bencher {
            samples: self.settings.sample_size,
            budget: self.settings.measurement_time,
            result: &mut result,
        };
        f(&mut b, input);
        self.report(&id.to_string(), result);
        self
    }

    /// Runs a benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut result = None;
        let mut b = Bencher {
            samples: self.settings.sample_size,
            budget: self.settings.measurement_time,
            result: &mut result,
        };
        f(&mut b);
        self.report(&id.to_string(), result);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, result: Option<(Duration, u64)>) {
        let Some((elapsed, iters)) = result else {
            println!("{}/{id}: no measurement", self.name);
            return;
        };
        let per_iter = elapsed.as_secs_f64() / iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if per_iter > 0.0 => {
                format!("  {:.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:.0} elem/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {:.3} ms/iter over {iters} iters{rate}",
            self.name,
            per_iter * 1e3
        );
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(8));
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
    }

    criterion_group! {
        name = demo_group;
        config = Criterion::default().sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        targets = target
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("8x2").to_string(), "8x2");
    }
}
