//! Transport behaviour tests: the four FlexPath properties the paper's
//! components rely on, exercised with real thread-ranks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sb_comm::LaunchHandle;
use sb_data::decompose::{default_partition, split_1d_part};
use sb_data::{Buffer, Chunk, DType, Region, Shape, Variable, VariableMeta};
use sb_stream::{StepStatus, StreamError, StreamHub, WriterOptions};

/// A 2-d test variable whose element (i, j) equals `1000*i + j`, making
/// reassembly failures pinpointable.
fn tagged_variable(name: &str, rows: usize, cols: usize) -> Variable {
    let data: Vec<f64> = (0..rows * cols)
        .map(|lin| ((lin / cols) * 1000 + lin % cols) as f64)
        .collect();
    Variable::new(
        name,
        Shape::of(&[("rows", rows), ("cols", cols)]),
        Buffer::from(data),
    )
    .unwrap()
}

#[test]
fn single_writer_single_reader_three_steps() {
    let hub = StreamHub::new();
    let hub_w = Arc::clone(&hub);
    let hub_r = Arc::clone(&hub);

    let writer = std::thread::spawn(move || {
        let mut w = hub_w.open_writer("lmp.fp", 0, 1, WriterOptions::default());
        for step in 0..3u64 {
            w.begin_step().unwrap();
            let mut var = tagged_variable("atoms", 4, 5);
            var.set_labels(
                1,
                vec![
                    "ID".into(),
                    "Type".into(),
                    "vx".into(),
                    "vy".into(),
                    "vz".into(),
                ],
            )
            .unwrap();
            var.attrs
                .insert("step".into(), sb_data::AttrValue::Int(step as i64));
            w.put_whole(var);
            w.end_step().unwrap();
        }
        w.close();
    });

    let reader = std::thread::spawn(move || {
        let mut r = hub_r.open_reader("lmp.fp", 0, 1);
        let mut steps = 0u64;
        while let StepStatus::Ready(s) = r.begin_step().unwrap() {
            assert_eq!(s, steps);
            assert_eq!(r.variables(), vec!["atoms".to_string()]);
            let meta = r.meta("atoms").unwrap();
            assert_eq!(meta.shape.ndims(), 2);
            assert_eq!(meta.shape.sizes(), vec![4, 5]);
            assert_eq!(meta.resolve_label(1, "vx").unwrap(), 2);
            let v = r.get_whole("atoms").unwrap();
            assert_eq!(v.get(&[3, 4]), 3004.0);
            assert_eq!(v.attrs["step"], sb_data::AttrValue::Int(steps as i64));
            r.end_step();
            steps += 1;
        }
        assert_eq!(steps, 3);
    });

    writer.join().unwrap();
    reader.join().unwrap();
}

#[test]
fn mxn_redistribution_reassembles_exactly() {
    // 4 writer ranks each own a row-block of a 37x8 array; 3 reader ranks
    // each read their own (different) row-block. Every reader box straddles
    // writer boundaries.
    let rows = 37;
    let cols = 8;
    let hub = StreamHub::new();
    let source = tagged_variable("field", rows, cols);
    let shape = source.shape.clone();

    let hub_w = Arc::clone(&hub);
    let src_w = source.clone();
    let writers = LaunchHandle::spawn("writers", 4, move |comm| {
        let mut w = hub_w.open_writer(
            "field.fp",
            comm.rank(),
            comm.size(),
            WriterOptions::default(),
        );
        let region = default_partition(&src_w.shape, comm.size(), comm.rank());
        let local = src_w.extract(&region).unwrap();
        let meta = VariableMeta::new("field", src_w.shape.clone(), DType::F64);
        w.begin_step().unwrap();
        w.put(Chunk::new(meta, region, local.data).unwrap());
        w.end_step().unwrap();
        w.close();
    })
    .unwrap();

    let hub_r = Arc::clone(&hub);
    let shape_r = shape.clone();
    let readers = LaunchHandle::spawn("readers", 3, move |comm| {
        let mut r = hub_r.open_reader("field.fp", comm.rank(), comm.size());
        assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
        let region = default_partition(&shape_r, comm.size(), comm.rank());
        let v = r.get("field", &region).unwrap();
        r.end_step();
        assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
        (region, v)
    })
    .unwrap();

    writers.join().unwrap();
    let parts = readers.join().unwrap();
    // Stitch the three reader boxes back together and compare to source.
    let mut rebuilt = Buffer::zeros(DType::F64, shape.total_len());
    let whole = Region::whole(&shape);
    for (region, v) in parts {
        sb_data::region::copy_region(&v.data, &region, &mut rebuilt, &whole, &region).unwrap();
    }
    assert_eq!(rebuilt, source.data);
}

#[test]
fn launch_order_does_not_matter() {
    // Reader attaches long before any writer exists, and vice versa.
    for writer_first in [true, false] {
        let hub = StreamHub::new();
        let hub_w = Arc::clone(&hub);
        let hub_r = Arc::clone(&hub);
        let (first_delay, second_delay) = if writer_first {
            (Duration::ZERO, Duration::from_millis(100))
        } else {
            (Duration::from_millis(100), Duration::ZERO)
        };

        let writer = std::thread::spawn(move || {
            std::thread::sleep(first_delay);
            let mut w = hub_w.open_writer("s.fp", 0, 1, WriterOptions::default());
            w.begin_step().unwrap();
            w.put_whole(tagged_variable("x", 2, 2));
            w.end_step().unwrap();
            w.close();
        });
        let reader = std::thread::spawn(move || {
            std::thread::sleep(second_delay);
            let mut r = hub_r.open_reader("s.fp", 0, 1);
            assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
            let v = r.get_whole("x").unwrap();
            assert_eq!(v.get(&[1, 1]), 1001.0);
            r.end_step();
            assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
        });
        writer.join().unwrap();
        reader.join().unwrap();
    }
}

#[test]
fn bounded_queue_applies_backpressure() {
    let hub = StreamHub::new();
    let committed = Arc::new(AtomicU64::new(0));
    let hub_w = Arc::clone(&hub);
    let committed_w = Arc::clone(&committed);

    let writer = std::thread::spawn(move || {
        let mut w = hub_w.open_writer("bp.fp", 0, 1, WriterOptions::buffered(2));
        for _ in 0..6 {
            w.begin_step().unwrap();
            w.put_whole(tagged_variable("x", 2, 2));
            w.end_step().unwrap();
            committed_w.fetch_add(1, Ordering::SeqCst);
        }
        w.close();
    });

    // Give the writer time to run ahead; with capacity 2 it must stall
    // after buffering two steps (begin of step 2 blocks).
    std::thread::sleep(Duration::from_millis(200));
    let ahead = committed.load(Ordering::SeqCst);
    assert!(
        ahead <= 2,
        "writer ran {ahead} steps ahead despite capacity 2"
    );

    let mut r = hub.open_reader("bp.fp", 0, 1);
    let mut steps = 0;
    while let StepStatus::Ready(_) = r.begin_step().unwrap() {
        r.get_whole("x").unwrap();
        r.end_step();
        steps += 1;
    }
    assert_eq!(steps, 6);
    writer.join().unwrap();
}

#[test]
fn rendezvous_blocks_until_consumed() {
    let hub = StreamHub::new();
    let finished = Arc::new(AtomicU64::new(0));
    let hub_w = Arc::clone(&hub);
    let finished_w = Arc::clone(&finished);

    let writer = std::thread::spawn(move || {
        let mut w = hub_w.open_writer("rv.fp", 0, 1, WriterOptions::rendezvous());
        w.begin_step().unwrap();
        w.put_whole(tagged_variable("x", 2, 2));
        w.end_step().unwrap(); // must block until the reader consumes the step
        finished_w.store(1, Ordering::SeqCst);
        w.close();
    });

    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        finished.load(Ordering::SeqCst),
        0,
        "rendezvous end_step returned before any reader consumed the step"
    );

    let mut r = hub.open_reader("rv.fp", 0, 1);
    assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
    r.end_step();
    writer.join().unwrap();
    assert_eq!(finished.load(Ordering::SeqCst), 1);
}

#[test]
fn immediate_close_yields_end_of_stream() {
    let hub = StreamHub::new();
    {
        let mut w = hub.open_writer("empty.fp", 0, 1, WriterOptions::default());
        w.close();
    }
    let mut r = hub.open_reader("empty.fp", 0, 1);
    assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
}

#[test]
fn writer_drop_closes_the_stream() {
    let hub = StreamHub::new();
    {
        let mut w = hub.open_writer("dropped.fp", 0, 1, WriterOptions::default());
        w.begin_step().unwrap();
        w.put_whole(tagged_variable("x", 1, 1));
        w.end_step().unwrap();
        // No explicit close: Drop must close.
    }
    let mut r = hub.open_reader("dropped.fp", 0, 1);
    assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
    r.end_step();
    assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
}

#[test]
fn get_errors_are_reported() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("err.fp", 0, 1, WriterOptions::default());
    // Writer only covers rows 0..2 of a declared 4-row array.
    let meta = VariableMeta::new(
        "partial",
        Shape::of(&[("rows", 4), ("cols", 2)]),
        DType::F64,
    );
    w.begin_step().unwrap();
    w.put(
        Chunk::new(
            meta,
            Region::new(vec![0, 0], vec![2, 2]),
            Buffer::F64(vec![0.0; 4]),
        )
        .unwrap(),
    );
    w.end_step().unwrap();

    let mut r = hub.open_reader("err.fp", 0, 1);
    assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
    // Unknown variable.
    assert!(r.get("nope", &Region::new(vec![0, 0], vec![1, 1])).is_err());
    // Region outside the global shape.
    assert!(r
        .get("partial", &Region::new(vec![0, 0], vec![5, 2]))
        .is_err());
    // Region inside the shape but not covered by any writer chunk.
    assert!(r.get_whole("partial").is_err());
    // Covered region succeeds.
    assert!(r
        .get("partial", &Region::new(vec![0, 0], vec![2, 2]))
        .is_ok());
    r.end_step();
    w.close();
}

#[test]
fn multiple_variables_per_step() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("multi.fp", 0, 1, WriterOptions::default());
    w.begin_step().unwrap();
    w.put_whole(tagged_variable("a", 2, 3));
    w.put_whole(
        Variable::new("ids", Shape::linear("n", 4), Buffer::U64(vec![1, 2, 3, 4])).unwrap(),
    );
    w.end_step().unwrap();
    w.close();

    let mut r = hub.open_reader("multi.fp", 0, 1);
    assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
    assert_eq!(r.variables(), vec!["a".to_string(), "ids".to_string()]);
    assert_eq!(r.meta("ids").unwrap().dtype, DType::U64);
    let ids = r.get_whole("ids").unwrap();
    assert_eq!(ids.data, Buffer::U64(vec![1, 2, 3, 4]));
    r.end_step();
}

#[test]
fn labels_are_sliced_to_the_read_box() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("lbl.fp", 0, 1, WriterOptions::default());
    let var = tagged_variable("atoms", 3, 5)
        .with_labels(1, &["ID", "Type", "vx", "vy", "vz"])
        .unwrap();
    w.begin_step().unwrap();
    w.put_whole(var);
    w.end_step().unwrap();
    w.close();

    let mut r = hub.open_reader("lbl.fp", 0, 1);
    r.begin_step().unwrap();
    let v = r
        .get("atoms", &Region::new(vec![0, 2], vec![3, 3]))
        .unwrap();
    assert_eq!(
        v.header(1).unwrap(),
        &["vx".to_string(), "vy".into(), "vz".into()]
    );
    r.end_step();
}

#[test]
fn many_writer_ranks_split_along_one_dim() {
    // 5 writers each contribute a 1-d slice computed with split_1d_part,
    // exercising empty chunks (len 12 over 5 parts leaves none empty, so
    // use len 3 over 5 to get two empty writers).
    let hub = StreamHub::new();
    let hub_w = Arc::clone(&hub);
    let writers = LaunchHandle::spawn("w", 5, move |comm| {
        let mut w = hub_w.open_writer(
            "thin.fp",
            comm.rank(),
            comm.size(),
            WriterOptions::default(),
        );
        let (off, count) = split_1d_part(3, comm.size(), comm.rank());
        let meta = VariableMeta::new("v", Shape::linear("n", 3), DType::F64);
        w.begin_step().unwrap();
        if count > 0 {
            let data: Vec<f64> = (off..off + count).map(|i| i as f64 * 10.0).collect();
            w.put(
                Chunk::new(
                    meta,
                    Region::new(vec![off], vec![count]),
                    Buffer::from(data),
                )
                .unwrap(),
            );
        }
        w.end_step().unwrap();
        w.close();
    })
    .unwrap();

    let mut r = hub.open_reader("thin.fp", 0, 1);
    assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
    let v = r.get_whole("v").unwrap();
    assert_eq!(v.data, Buffer::F64(vec![0.0, 10.0, 20.0]));
    r.end_step();
    writers.join().unwrap();
}

#[test]
fn metrics_count_bytes_and_steps() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("m.fp", 0, 1, WriterOptions::default());
    for _ in 0..2 {
        w.begin_step().unwrap();
        w.put_whole(tagged_variable("x", 2, 2)); // 4 f64 = 32 bytes
        w.end_step().unwrap();
    }
    w.close();
    let mut r = hub.open_reader("m.fp", 0, 1);
    while let StepStatus::Ready(_) = r.begin_step().unwrap() {
        r.get_whole("x").unwrap();
        r.end_step();
    }
    let m = hub.metrics("m.fp").unwrap();
    assert_eq!(m.bytes_written, 64);
    assert_eq!(m.bytes_read, 64);
    assert_eq!(m.steps_committed, 2);
    assert_eq!(m.steps_consumed, 2);
    assert!(hub.metrics("absent").is_none());
    assert_eq!(hub.stream_names(), vec!["m.fp".to_string()]);
    assert_eq!(hub.all_metrics().len(), 1);
}

#[test]
fn deadlock_returns_typed_timeout() {
    let hub = StreamHub::with_timeout(Duration::from_millis(100));
    let mut r = hub.open_reader("never.fp", 0, 1);
    // No writer will ever appear: the blocked read must surface as a typed
    // error (never a panic) carrying the stream name and a state snapshot.
    let err = r.begin_step().unwrap_err();
    match &err {
        StreamError::Timeout { stream, .. } => assert_eq!(stream, "never.fp"),
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(err.to_string().contains("timed out"));
}

#[test]
fn whole_read_shares_the_writers_allocation() {
    // The exact-cover fast path: one writer chunk covering the whole array
    // is served to every reader group by Arc clone — same allocation, no
    // copies, no zero-fill.
    let hub = StreamHub::new();
    let shape = Shape::of(&[("rows", 16), ("cols", 8)]);
    let payload = sb_data::SharedBuffer::from(Buffer::F64(
        (0..shape.total_len()).map(|i| i as f64).collect(),
    ));
    let mut w = hub.open_writer(
        "zc.fp",
        0,
        1,
        WriterOptions::default().with_reader_groups(2),
    );
    w.begin_step().unwrap();
    let meta = VariableMeta::new("field", shape.clone(), DType::F64);
    w.put(Chunk::new(meta, Region::whole(&shape), payload.clone()).unwrap());
    w.end_step().unwrap();
    w.close();

    for group in ["a", "b"] {
        let mut r = hub.open_reader_grouped("zc.fp", group, 0, 1);
        assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
        let v = r.get_whole("field").unwrap();
        assert!(
            sb_data::SharedBuffer::shares_allocation(&payload, &v.data),
            "group {group}: whole-read returned a copy instead of sharing the writer's buffer"
        );
        assert_eq!(v.get(&[3, 4]), 28.0);
        r.end_step();
    }

    let m = hub.metrics("zc.fp").unwrap();
    assert_eq!(m.copies_elided, 2, "one elision per reader group");
    assert_eq!(m.bytes_copied, 0, "payload bytes copied on the fast path");
    assert_eq!(
        m.bytes_read,
        2 * 16 * 8 * 8,
        "bytes served are still counted"
    );
}

#[test]
fn tiling_slab_reads_skip_the_zero_fill() {
    // Two writer row-blocks tile the reader's whole-array request: the box
    // is assembled by appending the two runs, never zero-filling first.
    let rows = 10;
    let cols = 4;
    let source = tagged_variable("field", rows, cols);
    let hub = StreamHub::new();
    let hub_w = Arc::clone(&hub);
    let src_w = source.clone();
    LaunchHandle::spawn("writers", 2, move |comm| {
        let mut w = hub_w.open_writer(
            "slab.fp",
            comm.rank(),
            comm.size(),
            WriterOptions::default(),
        );
        let region = default_partition(&src_w.shape, comm.size(), comm.rank());
        let local = src_w.extract(&region).unwrap();
        let meta = VariableMeta::new("field", src_w.shape.clone(), DType::F64);
        w.begin_step().unwrap();
        w.put(Chunk::new(meta, region, local.data).unwrap());
        w.end_step().unwrap();
        w.close();
    })
    .unwrap()
    .join()
    .unwrap();

    let mut r = hub.open_reader("slab.fp", 0, 1);
    assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
    let v = r.get_whole("field").unwrap();
    assert_eq!(v.data, source.data);

    // A row subrange straddling both chunks is also slab-assembled.
    let band = Region::new(vec![3, 0], vec![4, cols]);
    let b = r.get("field", &band).unwrap();
    assert_eq!(b.get(&[0, 0]), 3000.0);
    assert_eq!(b.get(&[3, 3]), 6003.0);
    r.end_step();

    let m = hub.metrics("slab.fp").unwrap();
    assert_eq!(m.zero_fills_elided, 2, "both reads should tile from slabs");
    assert_eq!(
        m.copies_elided, 0,
        "no single chunk exactly covers either box"
    );
    assert_eq!(m.bytes_copied, (rows * cols + 4 * cols) as u64 * 8);
}

#[test]
fn force_copy_restores_the_copying_data_plane() {
    // The bench ablation knob: with force_copy the same read goes through
    // zero-fill + copy_region, and the counters say so.
    let hub = StreamHub::new();
    let mut w = hub.open_writer("fc.fp", 0, 1, WriterOptions::default());
    w.begin_step().unwrap();
    w.put_whole(tagged_variable("x", 6, 3));
    w.end_step().unwrap();
    w.close();

    let mut r = hub.open_reader("fc.fp", 0, 1);
    r.set_force_copy(true);
    assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
    let v = r.get_whole("x").unwrap();
    assert_eq!(v.get(&[5, 2]), 5002.0);
    r.end_step();

    let m = hub.metrics("fc.fp").unwrap();
    assert_eq!(m.copies_elided, 0);
    assert_eq!(m.zero_fills_elided, 0);
    assert_eq!(m.bytes_copied, 6 * 3 * 8);
}

#[test]
fn strided_column_read_still_assembles_correctly() {
    // A column band is NOT a row slab (strided in memory): it must fall
    // back to the general path and still produce exact data.
    let hub = StreamHub::new();
    let mut w = hub.open_writer("col.fp", 0, 1, WriterOptions::default());
    w.begin_step().unwrap();
    w.put_whole(tagged_variable("x", 5, 7));
    w.end_step().unwrap();
    w.close();

    let mut r = hub.open_reader("col.fp", 0, 1);
    assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
    let band = Region::new(vec![0, 2], vec![5, 3]);
    let v = r.get("x", &band).unwrap();
    for i in 0..5 {
        for j in 0..3 {
            assert_eq!(v.get(&[i, j]), (i * 1000 + j + 2) as f64);
        }
    }
    r.end_step();

    let m = hub.metrics("col.fp").unwrap();
    assert_eq!(m.copies_elided, 0);
    assert_eq!(m.zero_fills_elided, 0);
    assert_eq!(m.bytes_copied, 5 * 3 * 8);
}
