//! Multiple reader groups on one stream: the pub/sub fan-out that backs
//! DAG-shaped workflows without data duplication.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sb_data::{Buffer, Shape, Variable};
use sb_stream::{StepStatus, StreamHub, WriterOptions};

fn step_variable(step: u64, n: usize) -> Variable {
    let data: Vec<f64> = (0..n).map(|i| (i as u64 * 100 + step) as f64).collect();
    Variable::new("x", Shape::linear("n", n), Buffer::from(data)).unwrap()
}

#[test]
fn two_groups_each_see_every_step() {
    let hub = StreamHub::new();
    let hub_w = Arc::clone(&hub);
    let writer = std::thread::spawn(move || {
        let mut w = hub_w.open_writer(
            "multi.fp",
            0,
            1,
            WriterOptions::default().with_reader_groups(2),
        );
        for step in 0..4u64 {
            w.begin_step().unwrap();
            w.put_whole(step_variable(step, 6));
            w.end_step().unwrap();
        }
        w.close();
    });

    let mut consumers = Vec::new();
    for group in ["analysis", "viz"] {
        let hub_r = Arc::clone(&hub);
        consumers.push(std::thread::spawn(move || {
            let mut r = hub_r.open_reader_grouped("multi.fp", group, 0, 1);
            assert_eq!(r.group(), group);
            let mut seen = Vec::new();
            while let StepStatus::Ready(step) = r.begin_step().unwrap() {
                let v = r.get_whole("x").unwrap();
                assert_eq!(v.data.get_f64(0), step as f64);
                seen.push(step);
                r.end_step();
            }
            seen
        }));
    }
    writer.join().unwrap();
    for c in consumers {
        assert_eq!(c.join().unwrap(), vec![0, 1, 2, 3]);
    }
}

#[test]
fn groups_can_have_different_rank_counts() {
    let hub = StreamHub::new();
    let hub_w = Arc::clone(&hub);
    let writer = std::thread::spawn(move || {
        let mut w = hub_w.open_writer("g.fp", 0, 1, WriterOptions::default().with_reader_groups(2));
        for step in 0..3u64 {
            w.begin_step().unwrap();
            w.put_whole(step_variable(step, 12));
            w.end_step().unwrap();
        }
        w.close();
    });

    let mut handles = Vec::new();
    for (group, nranks) in [("three", 3usize), ("two", 2usize)] {
        let hub_g = Arc::clone(&hub);
        handles.push(
            sb_comm::LaunchHandle::spawn(group, nranks, move |comm| {
                let mut r = hub_g.open_reader_grouped("g.fp", group, comm.rank(), comm.size());
                let mut steps = 0u64;
                while let StepStatus::Ready(_) = r.begin_step().unwrap() {
                    let (off, count) =
                        sb_data::decompose::split_1d_part(12, comm.size(), comm.rank());
                    let v = r
                        .get("x", &sb_data::Region::new(vec![off], vec![count]))
                        .unwrap();
                    assert_eq!(v.data.len(), count);
                    r.end_step();
                    steps += 1;
                }
                steps
            })
            .unwrap(),
        );
    }
    writer.join().unwrap();
    for h in handles {
        assert!(h.join().unwrap().iter().all(|&s| s == 3));
    }
}

#[test]
fn slow_group_applies_backpressure_for_all() {
    // Queue capacity 2: the writer may run at most 2 steps ahead of the
    // *slowest* group even while a fast group keeps up.
    let hub = StreamHub::new();
    let committed = Arc::new(AtomicU64::new(0));
    let hub_w = Arc::clone(&hub);
    let committed_w = Arc::clone(&committed);
    let writer = std::thread::spawn(move || {
        let mut w = hub_w.open_writer(
            "bp.fp",
            0,
            1,
            WriterOptions::buffered(2).with_reader_groups(2),
        );
        for step in 0..5u64 {
            w.begin_step().unwrap();
            w.put_whole(step_variable(step, 4));
            w.end_step().unwrap();
            committed_w.fetch_add(1, Ordering::SeqCst);
        }
        w.close();
    });

    // Fast group drains immediately; slow group holds its first step.
    let hub_fast = Arc::clone(&hub);
    let fast = std::thread::spawn(move || {
        let mut r = hub_fast.open_reader_grouped("bp.fp", "fast", 0, 1);
        let mut steps = 0;
        while let StepStatus::Ready(_) = r.begin_step().unwrap() {
            r.end_step();
            steps += 1;
        }
        steps
    });
    let hub_slow = Arc::clone(&hub);
    let slow = std::thread::spawn(move || {
        let mut r = hub_slow.open_reader_grouped("bp.fp", "slow", 0, 1);
        assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
        // Hold the step long enough for the writer to hit the cap.
        std::thread::sleep(Duration::from_millis(300));
        let ahead = r.stream_committed();
        r.end_step();
        let mut steps = 1;
        while let StepStatus::Ready(_) = r.begin_step().unwrap() {
            r.end_step();
            steps += 1;
        }
        (ahead, steps)
    });

    writer.join().unwrap();
    assert_eq!(fast.join().unwrap(), 5);
    let (ahead_while_held, steps) = slow.join().unwrap();
    assert_eq!(steps, 5);
    assert!(
        ahead_while_held <= 2,
        "writer committed {ahead_while_held} steps while the slow group held step 0 (cap 2)"
    );
}

#[test]
fn expected_groups_retain_steps_until_every_group_releases() {
    // Declaring `expected_reader_groups: 2` must hold every step until both
    // groups have subscribed AND released it — the first branch of
    // `front_fully_consumed`. Group "early" consumes the whole stream
    // before "late" even attaches; nothing may be dropped.
    let hub = StreamHub::new();
    let mut w = hub.open_writer(
        "retain.fp",
        0,
        1,
        WriterOptions::buffered(8).with_reader_groups(2),
    );
    for step in 0..3u64 {
        w.begin_step().unwrap();
        w.put_whole(step_variable(step, 4));
        w.end_step().unwrap();
    }
    w.close();

    let mut early = hub.open_reader_grouped("retain.fp", "early", 0, 1);
    for step in 0..3u64 {
        assert_eq!(early.begin_step().unwrap(), StepStatus::Ready(step));
        early.end_step();
    }
    assert_eq!(early.begin_step().unwrap(), StepStatus::EndOfStream);
    // Every step was released by "early", yet none may be popped: the
    // second declared group has not seen them.
    let m = hub.metrics("retain.fp").unwrap();
    assert_eq!(m.steps_committed, 3);
    assert_eq!(m.steps_consumed, 0, "steps dropped before group 2 attached");

    // The second group attaches after the fact and still sees everything.
    let mut late = hub.open_reader_grouped("retain.fp", "late", 0, 1);
    for step in 0..3u64 {
        assert_eq!(late.begin_step().unwrap(), StepStatus::Ready(step));
        let v = late.get_whole("x").unwrap();
        assert_eq!(v.data.get_f64(0), step as f64);
        late.end_step();
    }
    assert_eq!(late.begin_step().unwrap(), StepStatus::EndOfStream);
    assert_eq!(hub.metrics("retain.fp").unwrap().steps_consumed, 3);
}

#[test]
fn front_pops_only_when_every_subscribed_group_releases() {
    // The per-group release branch of `front_fully_consumed`: once two
    // groups subscribe, one releasing a step is not enough to pop it.
    let hub = StreamHub::new();
    let mut w = hub.open_writer(
        "joint.fp",
        0,
        1,
        WriterOptions::buffered(8).with_reader_groups(2),
    );
    let mut a = hub.open_reader_grouped("joint.fp", "a", 0, 1);
    let mut b = hub.open_reader_grouped("joint.fp", "b", 0, 1);
    for step in 0..2u64 {
        w.begin_step().unwrap();
        w.put_whole(step_variable(step, 4));
        w.end_step().unwrap();
    }

    assert_eq!(a.begin_step().unwrap(), StepStatus::Ready(0));
    a.end_step();
    assert_eq!(
        hub.metrics("joint.fp").unwrap().steps_consumed,
        0,
        "step 0 popped with group \"b\" still holding it"
    );

    assert_eq!(b.begin_step().unwrap(), StepStatus::Ready(0));
    b.end_step();
    assert_eq!(hub.metrics("joint.fp").unwrap().steps_consumed, 1);

    w.close();
    for r in [&mut a, &mut b] {
        assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(1));
        r.end_step();
        assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
    }
    assert_eq!(hub.metrics("joint.fp").unwrap().steps_consumed, 2);
}

#[test]
fn late_group_starts_at_the_current_front() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("late.fp", 0, 1, WriterOptions::buffered(8));
    // First group consumes two steps before the late group attaches.
    let mut first = hub.open_reader_grouped("late.fp", "first", 0, 1);
    for step in 0..3u64 {
        w.begin_step().unwrap();
        w.put_whole(step_variable(step, 4));
        w.end_step().unwrap();
    }
    for _ in 0..2 {
        assert!(matches!(first.begin_step().unwrap(), StepStatus::Ready(_)));
        first.end_step();
    }
    // Steps 0 and 1 are gone; the late group sees the stream from step 2.
    let mut late = hub.open_reader_grouped("late.fp", "late", 0, 1);
    assert_eq!(late.begin_step().unwrap(), StepStatus::Ready(2));
    let v = late.get_whole("x").unwrap();
    assert_eq!(v.data.get_f64(0), 2.0);
    late.end_step();
    w.close();
    assert_eq!(late.begin_step().unwrap(), StepStatus::EndOfStream);
    assert_eq!(first.begin_step().unwrap(), StepStatus::Ready(2));
    first.end_step();
    assert_eq!(first.begin_step().unwrap(), StepStatus::EndOfStream);
}
