//! The per-stream state machine: writer registration, step slots, bounded
//! buffering, and the completion/consumption protocol.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use sb_data::{Chunk, VariableMeta};

use crate::error::{StreamError, StreamResult};
use crate::metrics::Counters;
use crate::trace::{EventKind, TraceSite, Tracer};

/// Writer-side buffering policy, fixed by the first writer rank to open the
/// stream.
///
/// Marked `#[non_exhaustive]` so future knobs are not breaking changes:
/// construct via [`WriterOptions::default`], [`WriterOptions::buffered`], or
/// [`WriterOptions::rendezvous`] and refine with the `with_*` setters.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriterOptions {
    /// Maximum steps buffered (committed or in progress) before
    /// `begin_step` blocks — FlexPath's "buffer data up to a certain size".
    pub queue_capacity: usize,
    /// When true, `end_step` blocks until the reader group has fully
    /// consumed the step — the no-overlap mode used by the overlap ablation.
    pub rendezvous: bool,
    /// Number of reader groups the writer expects (ADIOS declares its
    /// "write groups" up front). Steps are retained until at least this
    /// many groups have subscribed *and* consumed them, so no declared
    /// subscriber can miss data by attaching late.
    pub expected_reader_groups: usize,
}

impl Default for WriterOptions {
    fn default() -> Self {
        WriterOptions {
            queue_capacity: 4,
            rendezvous: false,
            expected_reader_groups: 1,
        }
    }
}

impl WriterOptions {
    /// Buffered (overlapping) mode with the given queue depth.
    pub fn buffered(queue_capacity: usize) -> WriterOptions {
        WriterOptions::default().with_queue_capacity(queue_capacity)
    }

    /// Synchronous hand-off: every step is exchanged before the writer may
    /// proceed. Used to measure what FlexPath's asynchrony buys.
    pub fn rendezvous() -> WriterOptions {
        WriterOptions {
            queue_capacity: 1,
            rendezvous: true,
            ..WriterOptions::default()
        }
    }

    /// Sets the buffered queue depth (builder style).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> WriterOptions {
        assert!(queue_capacity >= 1, "queue capacity must be at least 1");
        self.queue_capacity = queue_capacity;
        self
    }

    /// Enables or disables rendezvous (synchronous hand-off) mode.
    pub fn with_rendezvous(mut self, rendezvous: bool) -> WriterOptions {
        self.rendezvous = rendezvous;
        self
    }

    /// Declares how many reader groups will subscribe (builder style).
    pub fn with_reader_groups(mut self, groups: usize) -> WriterOptions {
        assert!(groups >= 1, "a stream needs at least one reader group");
        self.expected_reader_groups = groups;
        self
    }
}

/// One variable inside one step: global metadata plus the writer chunks
/// received so far.
///
/// Public because transport backends move frozen steps around: the in-proc
/// backend shares them by `Arc`, the TCP backend rebuilds them from decoded
/// frames on the client side.
#[derive(Debug)]
pub struct VarSlot {
    /// Global metadata all contributing chunks agree on.
    pub meta: VariableMeta,
    /// The writer chunks received for this variable.
    pub chunks: Vec<Chunk>,
}

/// The frozen contents of a fully committed step.
pub type StepContents = Arc<BTreeMap<String, VarSlot>>;

#[derive(Debug, Default)]
struct Slot {
    committed: usize,
    /// Per reader group: ranks that have released this step.
    done_by: HashMap<String, usize>,
    staging: BTreeMap<String, VarSlot>,
    ready: Option<StepContents>,
}

/// One subscribed reader group: its size, the first step it observed, how
/// many steps it has fully released (all ranks ended them), and whether the
/// supervisor detached it after a downstream degradation.
struct ReaderGroup {
    nranks: usize,
    first_step: u64,
    /// Steps released by every rank of the group since `first_step`.
    /// Releases complete in step order (each rank steps sequentially), so
    /// `first_step + full_releases` is where a restarted group resumes.
    full_releases: u64,
    /// A detached group no longer holds steps back; its component was
    /// degraded or torn down and will not consume anything further.
    detached: bool,
}

struct State {
    writer_nranks: Option<usize>,
    reader_groups: HashMap<String, ReaderGroup>,
    options: WriterOptions,
    closed_writers: usize,
    /// Writer ranks that went away *without* closing — a dropped TCP
    /// connection or an explicit disconnect. Once every registered rank is
    /// closed-or-gone with at least one gone, blocked readers fail with
    /// `PeerGone` promptly instead of waiting out the hub timeout.
    gone_writers: usize,
    closed: bool,
    /// Step the current writer registration starts at (`base_step +
    /// queue.len()` at registration time); a restarted writer group resumes
    /// producing exactly where the failed incarnation's last *complete*
    /// step left off.
    writer_start: u64,
    /// Set when the workflow supervisor tears the stream down; blocked
    /// waiters return [`StreamError::PeerGone`] instead of hanging.
    poisoned: Option<String>,
    /// Step id of `queue[0]`.
    base_step: u64,
    queue: VecDeque<Slot>,
}

impl State {
    /// True when the front slot has been released by every group that can
    /// see it. Streams with no subscribers retain their steps (they will be
    /// delivered to whichever group attaches first). Detached groups no
    /// longer count.
    fn front_fully_consumed(&self) -> bool {
        if self.reader_groups.len() < self.options.expected_reader_groups.max(1) {
            return false;
        }
        let Some(front) = self.queue.front() else {
            return false;
        };
        if front.ready.is_none() {
            return false;
        }
        self.reader_groups.iter().all(|(name, g)| {
            g.detached
                || g.first_step > self.base_step
                || front.done_by.get(name).copied().unwrap_or(0) == g.nranks
        })
    }
}

/// A named stream connecting one writer group to one reader group.
pub(crate) struct Stream {
    pub(crate) name: String,
    state: Mutex<State>,
    cond: Condvar,
    pub(crate) counters: Arc<Counters>,
    /// Micros; shared with the owning hub so a `RunOptions` timeout
    /// override reaches streams that already exist.
    wait_timeout_micros: Arc<AtomicU64>,
    /// The owning hub's tracer plus this stream's interned name; stream
    /// lifecycle instants (commit, EOS, poison) are recorded here, while
    /// per-endpoint blocking spans live in the writer/reader handles.
    pub(crate) tracer: Arc<Tracer>,
    pub(crate) trace_id: u32,
}

impl Stream {
    pub(crate) fn new(
        name: String,
        wait_timeout_micros: Arc<AtomicU64>,
        tracer: Arc<Tracer>,
    ) -> Stream {
        let trace_id = tracer.intern(&name);
        Stream {
            name,
            state: Mutex::new(State {
                writer_nranks: None,
                reader_groups: HashMap::new(),
                options: WriterOptions::default(),
                closed_writers: 0,
                gone_writers: 0,
                closed: false,
                writer_start: 0,
                poisoned: None,
                base_step: 0,
                queue: VecDeque::new(),
            }),
            cond: Condvar::new(),
            counters: Arc::new(Counters::default()),
            wait_timeout_micros,
            tracer,
            trace_id,
        }
    }

    fn wait_timeout(&self) -> Duration {
        Duration::from_micros(self.wait_timeout_micros.load(Ordering::Relaxed))
    }

    /// Blocks on `cond` until `pred` holds. Returns
    /// [`StreamError::PeerGone`] as soon as the stream is poisoned and
    /// [`StreamError::Timeout`] (with a state snapshot) after the hub
    /// timeout — a hung workflow surfaces as a typed, diagnosable error
    /// instead of a panic or a silent deadlock.
    fn wait_until<T>(
        &self,
        state: &mut parking_lot::MutexGuard<'_, State>,
        what: &str,
        pred: impl FnMut(&mut State) -> Option<T>,
    ) -> StreamResult<T> {
        self.wait_until_or(state, what, pred, |_| None)
    }

    /// [`Stream::wait_until`] with an extra early-failure predicate: when
    /// `fail` yields an error the wait aborts immediately instead of running
    /// out the deadline. Checked *after* `pred`, so anything already
    /// satisfiable is still served.
    fn wait_until_or<T>(
        &self,
        state: &mut parking_lot::MutexGuard<'_, State>,
        what: &str,
        mut pred: impl FnMut(&mut State) -> Option<T>,
        mut fail: impl FnMut(&State) -> Option<StreamError>,
    ) -> StreamResult<T> {
        let timeout = self.wait_timeout();
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(reason) = &state.poisoned {
                return Err(StreamError::PeerGone {
                    stream: self.name.clone(),
                    reason: reason.clone(),
                });
            }
            if let Some(v) = pred(state) {
                return Ok(v);
            }
            if let Some(err) = fail(state) {
                return Err(err);
            }
            if self.cond.wait_until(state, deadline).timed_out() {
                return Err(StreamError::Timeout {
                    stream: self.name.clone(),
                    waiting_for: what.to_string(),
                    timeout,
                    detail: format!(
                        "writers={:?} readers={:?} closed={} base_step={} queued={}",
                        state.writer_nranks,
                        state
                            .reader_groups
                            .iter()
                            .map(|(n, g)| (n.clone(), g.nranks))
                            .collect::<Vec<_>>(),
                        state.closed,
                        state.base_step,
                        state.queue.len(),
                    ),
                });
            }
        }
    }

    // ---- writer-group protocol -------------------------------------------------

    /// Registers a writer rank; returns the step the writer group starts at
    /// (nonzero when a restarted group reattaches to a stream that already
    /// holds committed steps).
    pub(crate) fn register_writer(&self, nranks: usize, options: WriterOptions) -> u64 {
        assert!(nranks > 0, "writer group must have at least one rank");
        let mut state = self.state.lock();
        match state.writer_nranks {
            None => {
                state.writer_nranks = Some(nranks);
                state.options = options;
                state.writer_start = state.base_step + state.queue.len() as u64;
                self.cond.notify_all();
            }
            Some(existing) => {
                assert_eq!(
                    existing, nranks,
                    "stream {:?}: writer ranks disagree on group size",
                    self.name
                );
                assert_eq!(
                    state.options, options,
                    "stream {:?}: writer ranks disagree on options",
                    self.name
                );
            }
        }
        state.writer_start
    }

    /// A writer rank starts `step`; blocks while the buffer is full.
    pub(crate) fn writer_begin_step(&self, step: u64) -> StreamResult<()> {
        let mut state = self.state.lock();
        let capacity = state.options.queue_capacity as u64;
        let start = Instant::now();
        self.wait_until(&mut state, "buffer space", |s| {
            (step < s.base_step + capacity).then_some(())
        })?;
        self.counters.add_writer_wait(start.elapsed());
        // Create slots up through `step` (ranks run in lockstep, so this
        // extends by at most one in practice).
        while state.base_step + state.queue.len() as u64 <= step {
            state.queue.push_back(Slot::default());
        }
        Ok(())
    }

    /// A writer rank contributes a chunk to `step`.
    pub(crate) fn writer_put(&self, step: u64, chunk: Chunk) {
        let mut state = self.state.lock();
        let idx = (step - state.base_step) as usize;
        let slot = &mut state.queue[idx];
        assert!(
            slot.ready.is_none(),
            "stream {:?}: put after the step was committed",
            self.name
        );
        let bytes = chunk.byte_len();
        let entry = slot
            .staging
            .entry(chunk.meta.name.clone())
            .or_insert_with(|| VarSlot {
                meta: chunk.meta.clone(),
                chunks: Vec::new(),
            });
        assert_eq!(
            entry.meta, chunk.meta,
            "stream {:?}: writer ranks disagree on metadata of {:?}",
            self.name, chunk.meta.name
        );
        entry.chunks.push(chunk);
        drop(state);
        self.counters.add_written(bytes);
    }

    /// A writer rank finishes `step`; the last rank freezes the slot. In
    /// rendezvous mode, blocks until the reader group releases the step.
    pub(crate) fn writer_end_step(
        &self,
        step: u64,
        rank: usize,
        nranks: usize,
    ) -> StreamResult<()> {
        let mut state = self.state.lock();
        let idx = (step - state.base_step) as usize;
        let slot = &mut state.queue[idx];
        slot.committed += 1;
        assert!(
            slot.committed <= nranks,
            "stream {:?}: more end_step calls than writer ranks",
            self.name
        );
        if slot.committed == nranks {
            let staged = std::mem::take(&mut slot.staging);
            slot.ready = Some(Arc::new(staged));
            self.counters
                .steps_committed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.tracer.instant(
                EventKind::StepCommitted,
                TraceSite::stream(self.trace_id, rank, step),
                0,
            );
            self.cond.notify_all();
        }
        if state.options.rendezvous {
            let start = Instant::now();
            self.wait_until(&mut state, "rendezvous consumption", |s| {
                (s.base_step > step).then_some(())
            })?;
            self.counters.add_writer_wait(start.elapsed());
        }
        Ok(())
    }

    /// A writer rank is *gone* without closing: its process died, its
    /// connection dropped, or it declared it will never produce again.
    ///
    /// Unlike [`StreamWriter::abandon`](crate::StreamWriter::abandon) — which
    /// leaves the stream untouched so the supervisor can decide — this marks
    /// the loss on the stream itself. Once every registered rank is
    /// closed-or-gone with at least one gone, readers blocked on an
    /// uncommitted step fail with `PeerGone` promptly instead of running out
    /// the hub timeout (the EOS race: a writer aborting between `end_step`
    /// and close used to leave readers hanging). A subsequent
    /// [`Stream::reattach_writer`] (component restart) clears the marks.
    pub(crate) fn writer_disconnect(&self) {
        let mut state = self.state.lock();
        state.gone_writers += 1;
        self.cond.notify_all();
    }

    /// A writer rank closes; the last one marks the stream ended.
    pub(crate) fn writer_close(&self, rank: usize, nranks: usize) {
        let mut state = self.state.lock();
        state.closed_writers += 1;
        if state.closed_writers == nranks {
            state.closed = true;
            let produced = state.base_step + state.queue.len() as u64;
            self.tracer.instant(
                EventKind::EndOfStream,
                TraceSite::stream(self.trace_id, rank, produced),
                0,
            );
            self.cond.notify_all();
        }
    }

    // ---- reader-group protocol -------------------------------------------------

    /// Registers rank membership of reader group `group`; returns the step
    /// this rank resumes at — `base_step` for a brand-new group, or the
    /// first not-yet-fully-released step for a group reattaching after a
    /// restart.
    pub(crate) fn register_reader(&self, group: &str, nranks: usize) -> u64 {
        assert!(nranks > 0, "reader group must have at least one rank");
        let mut state = self.state.lock();
        let base = state.base_step;
        match state.reader_groups.get(group) {
            None => {
                state.reader_groups.insert(
                    group.to_string(),
                    ReaderGroup {
                        nranks,
                        first_step: base,
                        full_releases: 0,
                        detached: false,
                    },
                );
                self.cond.notify_all();
                base
            }
            Some(existing) => {
                assert_eq!(
                    existing.nranks, nranks,
                    "stream {:?}: ranks of reader group {group:?} disagree on group size",
                    self.name
                );
                existing.first_step + existing.full_releases
            }
        }
    }

    /// A reader rank asks for `step`; returns its frozen contents, or `None`
    /// at end of stream.
    pub(crate) fn reader_begin_step(&self, step: u64) -> StreamResult<Option<StepContents>> {
        let mut state = self.state.lock();
        let start = Instant::now();
        let name = self.name.clone();
        let fail = move |s: &State| {
            let nranks = s.writer_nranks?;
            if s.gone_writers == 0 || s.closed {
                return None;
            }
            if s.closed_writers + s.gone_writers < nranks {
                return None;
            }
            // Every writer rank is closed or gone and at least one is gone:
            // the step being waited on can never be committed. (Committed
            // steps are still served — the success predicate runs first.)
            Some(StreamError::PeerGone {
                stream: name.clone(),
                reason: format!(
                    "writer group abandoned the stream ({} of {nranks} ranks \
                     gone before end of stream)",
                    s.gone_writers
                ),
            })
        };
        let got = self.wait_until_or(
            &mut state,
            "a committed step",
            |s| {
                let idx = step.checked_sub(s.base_step).map(|d| d as usize);
                if let Some(idx) = idx {
                    if idx < s.queue.len() {
                        if let Some(ready) = &s.queue[idx].ready {
                            return Some(Some(Arc::clone(ready)));
                        }
                    }
                }
                // No such committed step; if the writer group is done and will
                // never produce it, report end of stream.
                if s.closed {
                    let produced = s.base_step + s.queue.len() as u64;
                    let last_is_ready = s
                        .queue
                        .back()
                        .map(|slot| slot.ready.is_some())
                        .unwrap_or(true);
                    if step >= produced || (step + 1 == produced && !last_is_ready) {
                        return Some(None);
                    }
                }
                None
            },
            fail,
        )?;
        self.counters.add_reader_wait(start.elapsed());
        Ok(got)
    }

    /// A rank of reader group `group` releases `step`; slots are popped off
    /// the front once *every* subscribed group has released them, which
    /// unblocks writers waiting on buffer capacity.
    pub(crate) fn reader_end_step(&self, group: &str, step: u64, nranks: usize) {
        let mut state = self.state.lock();
        let idx = (step - state.base_step) as usize;
        let fully_released = {
            let slot = &mut state.queue[idx];
            let done = slot.done_by.entry(group.to_string()).or_insert(0);
            *done += 1;
            assert!(
                *done <= nranks,
                "stream {:?}: more end_step calls than ranks in reader group {group:?}",
                self.name
            );
            *done == nranks
        };
        if fully_released {
            if let Some(g) = state.reader_groups.get_mut(group) {
                // Ranks step sequentially, so full releases complete in
                // step order; this counter is the group's resume point.
                g.full_releases += 1;
            }
        }
        if self.pop_consumed(&mut state) {
            self.cond.notify_all();
        }
    }

    /// Pops every fully consumed front slot; returns whether any were.
    fn pop_consumed(&self, state: &mut State) -> bool {
        let mut popped = false;
        while state.front_fully_consumed() {
            state.queue.pop_front();
            state.base_step += 1;
            popped = true;
            self.counters
                .steps_consumed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        popped
    }

    /// A point-in-time copy of every *committed* step currently buffered,
    /// as `(step, contents)` pairs in step order. Steps are shared by `Arc`
    /// clone (no payload copies) and the stream's protocol state is
    /// untouched — readers and writers proceed as if nothing happened.
    /// Used by the reactive-trigger `snapshot_stream` action.
    pub(crate) fn snapshot(&self) -> Vec<(u64, StepContents)> {
        let state = self.state.lock();
        state
            .queue
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.ready
                    .as_ref()
                    .map(|ready| (state.base_step + i as u64, Arc::clone(ready)))
            })
            .collect()
    }

    // ---- supervision hooks -----------------------------------------------------

    /// Marks the stream dead: every blocked (and future blocking) call
    /// returns [`StreamError::PeerGone`] with `reason`. Used by the
    /// workflow supervisor when aborting, so no component hangs waiting on
    /// a peer that will never come back.
    pub(crate) fn poison(&self, reason: &str) {
        let mut state = self.state.lock();
        if state.poisoned.is_none() {
            state.poisoned = Some(reason.to_string());
            self.tracer.instant(
                EventKind::Poisoned,
                TraceSite::stream(self.trace_id, 0, state.base_step),
                0,
            );
        }
        self.cond.notify_all();
    }

    /// Forces a clean end-of-stream: any partially committed trailing steps
    /// are discarded and readers observe EOS once the remaining complete
    /// steps drain. This is the degradation contract — downstream sees a
    /// short stream, never a hang.
    pub(crate) fn force_end_of_stream(&self) {
        let mut state = self.state.lock();
        while state.queue.back().is_some_and(|s| s.ready.is_none()) {
            state.queue.pop_back();
        }
        state.closed = true;
        let produced = state.base_step + state.queue.len() as u64;
        self.tracer.instant(
            EventKind::EndOfStream,
            TraceSite::stream(self.trace_id, 0, produced),
            1, // forced by the supervisor, not a natural close
        );
        self.cond.notify_all();
    }

    /// Detaches reader group `group`: it stops holding steps back (its
    /// component was degraded or the workflow is winding down). Registers a
    /// zero-rank placeholder if the group never attached, so writers whose
    /// `expected_reader_groups` counts it are not stuck waiting forever.
    pub(crate) fn detach_reader_group(&self, group: &str) {
        let mut state = self.state.lock();
        let base = state.base_step;
        match state.reader_groups.get_mut(group) {
            Some(g) => g.detached = true,
            None => {
                state.reader_groups.insert(
                    group.to_string(),
                    ReaderGroup {
                        nranks: 0,
                        first_step: base,
                        full_releases: 0,
                        detached: true,
                    },
                );
            }
        }
        self.pop_consumed(&mut state);
        self.cond.notify_all();
    }

    /// Prepares reader group `group` for a restarted component: partial
    /// release counts at steps the group has not fully released are
    /// discarded (the restarted ranks will re-read and re-release them).
    pub(crate) fn reset_reader_group(&self, group: &str) {
        let mut state = self.state.lock();
        let Some(g) = state.reader_groups.get_mut(group) else {
            return;
        };
        g.detached = false;
        let resume = g.first_step + g.full_releases;
        let base = state.base_step;
        for (i, slot) in state.queue.iter_mut().enumerate() {
            if base + i as u64 >= resume {
                if let Some(done) = slot.done_by.get_mut(group) {
                    *done = 0;
                }
            }
        }
        self.cond.notify_all();
    }

    /// Prepares the writer side for a restarted component: partially
    /// committed trailing steps are discarded (the restarted group
    /// re-produces them) and the registration is reopened so the new
    /// incarnation can attach.
    pub(crate) fn reattach_writer(&self) {
        let mut state = self.state.lock();
        while state.queue.back().is_some_and(|s| s.ready.is_none()) {
            state.queue.pop_back();
        }
        state.writer_nranks = None;
        state.closed_writers = 0;
        state.gone_writers = 0;
        state.closed = false;
        self.cond.notify_all();
    }
}
