//! The per-stream state machine: writer registration, step slots, bounded
//! buffering, and the completion/consumption protocol.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use sb_data::{Chunk, VariableMeta};

use crate::metrics::Counters;

/// Writer-side buffering policy, fixed by the first writer rank to open the
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriterOptions {
    /// Maximum steps buffered (committed or in progress) before
    /// `begin_step` blocks — FlexPath's "buffer data up to a certain size".
    pub queue_capacity: usize,
    /// When true, `end_step` blocks until the reader group has fully
    /// consumed the step — the no-overlap mode used by the overlap ablation.
    pub rendezvous: bool,
    /// Number of reader groups the writer expects (ADIOS declares its
    /// "write groups" up front). Steps are retained until at least this
    /// many groups have subscribed *and* consumed them, so no declared
    /// subscriber can miss data by attaching late.
    pub expected_reader_groups: usize,
}

impl Default for WriterOptions {
    fn default() -> Self {
        WriterOptions {
            queue_capacity: 4,
            rendezvous: false,
            expected_reader_groups: 1,
        }
    }
}

impl WriterOptions {
    /// Buffered (overlapping) mode with the given queue depth.
    pub fn buffered(queue_capacity: usize) -> WriterOptions {
        assert!(queue_capacity >= 1, "queue capacity must be at least 1");
        WriterOptions {
            queue_capacity,
            ..WriterOptions::default()
        }
    }

    /// Synchronous hand-off: every step is exchanged before the writer may
    /// proceed. Used to measure what FlexPath's asynchrony buys.
    pub fn rendezvous() -> WriterOptions {
        WriterOptions {
            queue_capacity: 1,
            rendezvous: true,
            ..WriterOptions::default()
        }
    }

    /// Declares how many reader groups will subscribe (builder style).
    pub fn with_reader_groups(mut self, groups: usize) -> WriterOptions {
        assert!(groups >= 1, "a stream needs at least one reader group");
        self.expected_reader_groups = groups;
        self
    }
}

/// One variable inside one step: global metadata plus the writer chunks
/// received so far.
#[derive(Debug)]
pub(crate) struct VarSlot {
    pub(crate) meta: VariableMeta,
    pub(crate) chunks: Vec<Chunk>,
}

/// The frozen contents of a fully committed step.
pub(crate) type StepContents = Arc<BTreeMap<String, VarSlot>>;

#[derive(Debug, Default)]
struct Slot {
    committed: usize,
    /// Per reader group: ranks that have released this step.
    done_by: HashMap<String, usize>,
    staging: BTreeMap<String, VarSlot>,
    ready: Option<StepContents>,
}

/// One subscribed reader group: its size and the first step it observes
/// (groups attaching after steps were consumed start at the then-current
/// front of the queue).
struct ReaderGroup {
    nranks: usize,
    first_step: u64,
}

struct State {
    writer_nranks: Option<usize>,
    reader_groups: HashMap<String, ReaderGroup>,
    options: WriterOptions,
    closed_writers: usize,
    closed: bool,
    /// Step id of `queue[0]`.
    base_step: u64,
    queue: VecDeque<Slot>,
}

impl State {
    /// True when the front slot has been released by every group that can
    /// see it. Streams with no subscribers retain their steps (they will be
    /// delivered to whichever group attaches first).
    fn front_fully_consumed(&self) -> bool {
        if self.reader_groups.len() < self.options.expected_reader_groups.max(1) {
            return false;
        }
        let Some(front) = self.queue.front() else {
            return false;
        };
        if front.ready.is_none() {
            return false;
        }
        self.reader_groups.iter().all(|(name, g)| {
            g.first_step > self.base_step
                || front.done_by.get(name).copied().unwrap_or(0) == g.nranks
        })
    }
}

/// A named stream connecting one writer group to one reader group.
pub(crate) struct Stream {
    pub(crate) name: String,
    state: Mutex<State>,
    cond: Condvar,
    pub(crate) counters: Counters,
    wait_timeout: Duration,
}

impl Stream {
    pub(crate) fn new(name: String, wait_timeout: Duration) -> Stream {
        Stream {
            name,
            state: Mutex::new(State {
                writer_nranks: None,
                reader_groups: HashMap::new(),
                options: WriterOptions::default(),
                closed_writers: 0,
                closed: false,
                base_step: 0,
                queue: VecDeque::new(),
            }),
            cond: Condvar::new(),
            counters: Counters::default(),
            wait_timeout,
        }
    }

    /// Blocks on `cond` until `pred` holds, panicking after the hub timeout
    /// with a description — a hung workflow surfaces as a diagnosable panic
    /// instead of a silent deadlock.
    fn wait_until<T>(
        &self,
        state: &mut parking_lot::MutexGuard<'_, State>,
        what: &str,
        mut pred: impl FnMut(&mut State) -> Option<T>,
    ) -> T {
        let deadline = Instant::now() + self.wait_timeout;
        loop {
            if let Some(v) = pred(state) {
                return v;
            }
            if self.cond.wait_until(state, deadline).timed_out() {
                panic!(
                    "stream {:?}: timed out after {:?} waiting for {what} \
                     (writers={:?} readers={:?} closed={} base_step={} queued={})",
                    self.name,
                    self.wait_timeout,
                    state.writer_nranks,
                    state
                        .reader_groups
                        .iter()
                        .map(|(n, g)| (n.clone(), g.nranks))
                        .collect::<Vec<_>>(),
                    state.closed,
                    state.base_step,
                    state.queue.len(),
                );
            }
        }
    }

    // ---- writer-group protocol -------------------------------------------------

    pub(crate) fn register_writer(&self, nranks: usize, options: WriterOptions) {
        assert!(nranks > 0, "writer group must have at least one rank");
        let mut state = self.state.lock();
        match state.writer_nranks {
            None => {
                state.writer_nranks = Some(nranks);
                state.options = options;
                self.cond.notify_all();
            }
            Some(existing) => {
                assert_eq!(
                    existing, nranks,
                    "stream {:?}: writer ranks disagree on group size",
                    self.name
                );
                assert_eq!(
                    state.options, options,
                    "stream {:?}: writer ranks disagree on options",
                    self.name
                );
            }
        }
    }

    /// A writer rank starts `step`; blocks while the buffer is full.
    pub(crate) fn writer_begin_step(&self, step: u64) {
        let mut state = self.state.lock();
        let capacity = state.options.queue_capacity as u64;
        let start = Instant::now();
        self.wait_until(&mut state, "buffer space", |s| {
            (step < s.base_step + capacity).then_some(())
        });
        self.counters.add_writer_wait(start.elapsed());
        // Create slots up through `step` (ranks run in lockstep, so this
        // extends by at most one in practice).
        while state.base_step + state.queue.len() as u64 <= step {
            state.queue.push_back(Slot::default());
        }
    }

    /// A writer rank contributes a chunk to `step`.
    pub(crate) fn writer_put(&self, step: u64, chunk: Chunk) {
        let mut state = self.state.lock();
        let idx = (step - state.base_step) as usize;
        let slot = &mut state.queue[idx];
        assert!(
            slot.ready.is_none(),
            "stream {:?}: put after the step was committed",
            self.name
        );
        let bytes = chunk.byte_len();
        let entry = slot
            .staging
            .entry(chunk.meta.name.clone())
            .or_insert_with(|| VarSlot {
                meta: chunk.meta.clone(),
                chunks: Vec::new(),
            });
        assert_eq!(
            entry.meta, chunk.meta,
            "stream {:?}: writer ranks disagree on metadata of {:?}",
            self.name, chunk.meta.name
        );
        entry.chunks.push(chunk);
        drop(state);
        self.counters.add_written(bytes);
    }

    /// A writer rank finishes `step`; the last rank freezes the slot. In
    /// rendezvous mode, blocks until the reader group releases the step.
    pub(crate) fn writer_end_step(&self, step: u64, nranks: usize) {
        let mut state = self.state.lock();
        let idx = (step - state.base_step) as usize;
        let slot = &mut state.queue[idx];
        slot.committed += 1;
        assert!(
            slot.committed <= nranks,
            "stream {:?}: more end_step calls than writer ranks",
            self.name
        );
        if slot.committed == nranks {
            let staged = std::mem::take(&mut slot.staging);
            slot.ready = Some(Arc::new(staged));
            self.counters
                .steps_committed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.cond.notify_all();
        }
        if state.options.rendezvous {
            let start = Instant::now();
            self.wait_until(&mut state, "rendezvous consumption", |s| {
                (s.base_step > step).then_some(())
            });
            self.counters.add_writer_wait(start.elapsed());
        }
    }

    /// A writer rank closes; the last one marks the stream ended.
    pub(crate) fn writer_close(&self, nranks: usize) {
        let mut state = self.state.lock();
        state.closed_writers += 1;
        if state.closed_writers == nranks {
            state.closed = true;
            self.cond.notify_all();
        }
    }

    // ---- reader-group protocol -------------------------------------------------

    /// Registers rank membership of reader group `group`; returns the first
    /// step this group will observe.
    pub(crate) fn register_reader(&self, group: &str, nranks: usize) -> u64 {
        assert!(nranks > 0, "reader group must have at least one rank");
        let mut state = self.state.lock();
        let base = state.base_step;
        match state.reader_groups.get(group) {
            None => {
                state.reader_groups.insert(
                    group.to_string(),
                    ReaderGroup {
                        nranks,
                        first_step: base,
                    },
                );
                self.cond.notify_all();
                base
            }
            Some(existing) => {
                assert_eq!(
                    existing.nranks, nranks,
                    "stream {:?}: ranks of reader group {group:?} disagree on group size",
                    self.name
                );
                existing.first_step
            }
        }
    }

    /// A reader rank asks for `step`; returns its frozen contents, or `None`
    /// at end of stream.
    pub(crate) fn reader_begin_step(&self, step: u64) -> Option<StepContents> {
        let mut state = self.state.lock();
        let start = Instant::now();
        let got = self.wait_until(&mut state, "a committed step", |s| {
            let idx = step.checked_sub(s.base_step).map(|d| d as usize);
            if let Some(idx) = idx {
                if idx < s.queue.len() {
                    if let Some(ready) = &s.queue[idx].ready {
                        return Some(Some(Arc::clone(ready)));
                    }
                }
            }
            // No such committed step; if the writer group is done and will
            // never produce it, report end of stream.
            if s.closed {
                let produced = s.base_step + s.queue.len() as u64;
                let last_is_ready = s
                    .queue
                    .back()
                    .map(|slot| slot.ready.is_some())
                    .unwrap_or(true);
                if step >= produced || (step + 1 == produced && !last_is_ready) {
                    return Some(None);
                }
            }
            None
        });
        self.counters.add_reader_wait(start.elapsed());
        got
    }

    /// A rank of reader group `group` releases `step`; slots are popped off
    /// the front once *every* subscribed group has released them, which
    /// unblocks writers waiting on buffer capacity.
    pub(crate) fn reader_end_step(&self, group: &str, step: u64, nranks: usize) {
        let mut state = self.state.lock();
        let idx = (step - state.base_step) as usize;
        let slot = &mut state.queue[idx];
        let done = slot.done_by.entry(group.to_string()).or_insert(0);
        *done += 1;
        assert!(
            *done <= nranks,
            "stream {:?}: more end_step calls than ranks in reader group {group:?}",
            self.name
        );
        let mut popped = false;
        while state.front_fully_consumed() {
            state.queue.pop_front();
            state.base_step += 1;
            popped = true;
            self.counters
                .steps_consumed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        if popped {
            self.cond.notify_all();
        }
    }
}
