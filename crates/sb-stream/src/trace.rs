//! Structured step-timeline tracing: per-thread event rings, a drained
//! [`Timeline`], and exporters (Chrome trace-event JSON, latency
//! histograms, a text waterfall).
//!
//! The paper's whole evaluation is timing evidence — per-timestep
//! completion times, per-process KB/s, end-to-end workflow time — but
//! aggregates cannot show *where inside a step* time went or *when* a
//! restart fired. This module records one event per step phase (input
//! wait, compute, publish), per stream transition (commit, blocked →
//! unblocked, EOS, poison), and per supervisor decision (fault injected,
//! restart attempt, degrade), each stamped with component label, rank,
//! stream and step, then drains them into a single ordered timeline.
//!
//! ## Overhead discipline
//!
//! Tracing must cost nothing measurable when disabled and very little when
//! enabled:
//!
//! - Every recording site is guarded by one relaxed [`AtomicBool`] load
//!   ([`Tracer::enabled`]); the disabled path takes no locks, no clocks
//!   beyond what the metrics counters already take, and allocates nothing.
//! - When enabled, events land in a *thread-owned* pre-allocated ring
//!   ([`Tracer::install_thread_ring`]): pushing is a plain bounded-vector
//!   write with zero synchronization. Rings flush into the shared sink
//!   exactly once, when the owning thread's guard drops.
//! - Threads without an installed ring (ad-hoc bench threads, hub calls
//!   from the runtime thread) fall back to a mutex push — correct, just
//!   not on the per-step fast path.
//! - A full ring overwrites its *oldest* events and counts them in
//!   [`Timeline::dropped`]: a long run degrades to "most recent window",
//!   never to unbounded memory.
//!
//! Strings never travel with events: labels and stream names are interned
//! once ([`Tracer::intern`]) and events carry `u32` ids.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Default per-thread ring capacity, in events. At 8 events per step a
/// component rank traces ~8k steps before the ring starts dropping its
/// oldest events.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// Tracing configuration, passed through
/// `RunOptions::with_tracing(TraceConfig)` (or implied by `SB_TRACE=1`).
///
/// Marked `#[non_exhaustive]` so future knobs (sampling, category masks)
/// are not breaking changes: construct via [`TraceConfig::default`] and
/// refine with the `with_*` setters.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Capacity of each thread's event ring, in events; a full ring drops
    /// its oldest events (counted in [`Timeline::dropped`]).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

impl TraceConfig {
    /// The default configuration.
    pub fn new() -> TraceConfig {
        TraceConfig::default()
    }

    /// Sets the per-thread ring capacity (builder style).
    pub fn with_ring_capacity(mut self, ring_capacity: usize) -> TraceConfig {
        assert!(ring_capacity >= 1, "ring capacity must be at least 1");
        self.ring_capacity = ring_capacity;
        self
    }
}

/// What one trace event describes. Span kinds carry a duration; instant
/// kinds mark a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// One whole timestep of a component rank (begin-input to end-output).
    Step,
    /// Time a component rank spent blocked waiting for input data.
    Wait,
    /// Time a component rank spent reading + transforming (the per-step
    /// body, including the MxN gather out of the committed slots).
    Compute,
    /// Time a component rank spent publishing its output step (begin_step
    /// through end_step on the output stream, including backpressure).
    Publish,
    /// A writer rank blocked in `begin_step` until buffer space freed.
    WriterBlocked,
    /// A reader rank blocked in `begin_step` until a step was committed.
    ReaderBlocked,
    /// The last writer rank committed a step (it became readable).
    StepCommitted,
    /// The stream ended: last writer closed, or the supervisor forced EOS
    /// while degrading a failed producer (`arg = 1` when forced).
    EndOfStream,
    /// The supervisor poisoned the stream during teardown.
    Poisoned,
    /// A seeded chaos fault fired at this site (`arg` holds the
    /// [`crate::FaultOp`] as 1 = kill, 2 = stall, 3 = drop-chunk).
    FaultInjected,
    /// The supervisor is about to respawn a failed component (`arg` holds
    /// the upcoming attempt number, so the first restart records 2).
    RestartAttempt,
    /// The supervisor degraded a failed component: outputs were forced to
    /// EOS and its input subscriptions detached.
    Degraded,
    /// A wire codec compressed one step's payload before framing it
    /// (`arg` holds the bytes saved: uncompressed minus wire size).
    Compressed,
    /// A fired trigger action was skipped because the backend cannot
    /// perform it (e.g. `snapshot_stream` on a transport that does not
    /// expose buffered steps); the fired record carries the same outcome.
    TriggerSkipped,
}

impl EventKind {
    /// True for kinds that carry a duration (rendered as Chrome `"X"`
    /// complete events); instants render as `"i"`.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::Step
                | EventKind::Wait
                | EventKind::Compute
                | EventKind::Publish
                | EventKind::WriterBlocked
                | EventKind::ReaderBlocked
        )
    }

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Step => "step",
            EventKind::Wait => "wait",
            EventKind::Compute => "compute",
            EventKind::Publish => "publish",
            EventKind::WriterBlocked => "writer_blocked",
            EventKind::ReaderBlocked => "reader_blocked",
            EventKind::StepCommitted => "step_committed",
            EventKind::EndOfStream => "end_of_stream",
            EventKind::Poisoned => "poisoned",
            EventKind::FaultInjected => "fault_injected",
            EventKind::RestartAttempt => "restart_attempt",
            EventKind::Degraded => "degraded",
            EventKind::Compressed => "compressed",
            EventKind::TriggerSkipped => "trigger_skipped",
        }
    }
}

/// One fixed-size, string-free event as it sits in a ring: interned ids
/// only, nanosecond offsets from the tracer's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// What happened.
    pub kind: EventKind,
    /// Interned component label (0 = none; see [`Tracer::intern`]).
    pub label: u32,
    /// Interned stream name (0 = none).
    pub stream: u32,
    /// Rank within the component or stream endpoint group.
    pub rank: u32,
    /// Transport step the event belongs to.
    pub step: u64,
    /// Start offset from the tracer epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Kind-specific payload (attempt number, fault op, forced-EOS flag).
    pub arg: u64,
}

/// A resolved event of a drained [`Timeline`]: interned ids replaced with
/// their strings, times as [`Duration`]s since the workflow epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Component label, or `""` for stream-scoped events.
    pub component: String,
    /// Stream name, or `""` when the event is not tied to a stream.
    pub stream: String,
    /// Rank within the component or stream endpoint group.
    pub rank: u32,
    /// Transport step the event belongs to.
    pub step: u64,
    /// Offset of the event start from the tracer epoch.
    pub start: Duration,
    /// Span duration (zero for instants).
    pub duration: Duration,
    /// Kind-specific payload (attempt number, fault op, forced-EOS flag).
    pub arg: u64,
}

impl TraceEvent {
    /// Offset of the event end from the tracer epoch.
    pub fn end(&self) -> Duration {
        self.start + self.duration
    }
}

#[derive(Default)]
struct Interner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

/// The shared tracing state of one [`crate::StreamHub`]: the enabled flag,
/// the epoch, the string interner, and the sink that thread rings flush
/// into. One tracer per hub keeps concurrent workflows in one process
/// (e.g. parallel tests) from mixing timelines.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    ring_capacity: AtomicUsize,
    dropped: AtomicU64,
    interner: Mutex<Interner>,
    sink: Mutex<Vec<RawEvent>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A disabled tracer; [`Tracer::enable`] arms it.
    pub fn new() -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            ring_capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
            dropped: AtomicU64::new(0),
            // Id 0 is reserved for "no label"/"no stream".
            interner: Mutex::new(Interner {
                ids: HashMap::from([(String::new(), 0)]),
                names: vec![String::new()],
            }),
            sink: Mutex::new(Vec::new()),
        }
    }

    /// Whether recording is armed. Every instrumentation site checks this
    /// first — one relaxed atomic load is the entire disabled-path cost.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Arms recording with `config`.
    pub fn enable(&self, config: &TraceConfig) {
        self.ring_capacity
            .store(config.ring_capacity, Ordering::Relaxed);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Disarms recording; already-buffered events stay drainable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Nanoseconds since the tracer epoch (the hub's construction).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Interns `name`, returning its stable id. Call once per endpoint
    /// (stream open, run-loop entry), never per event.
    pub fn intern(&self, name: &str) -> u32 {
        let mut interner = self.interner.lock();
        if let Some(&id) = interner.ids.get(name) {
            return id;
        }
        let id = interner.names.len() as u32;
        interner.names.push(name.to_string());
        interner.ids.insert(name.to_string(), id);
        id
    }

    /// Interns the calling thread's component label: the workflow runtime
    /// names rank threads `"<label>/<rank>"`, and that label is
    /// workflow-unique — it distinguishes two instances of one component
    /// type (GTCP wires Dim-Reduce twice) where the type's own base label
    /// cannot. Falls back to `fallback` off launch threads.
    pub fn intern_thread_label(&self, fallback: &str) -> u32 {
        let thread = std::thread::current();
        match thread.name().and_then(|n| n.rsplit_once('/')) {
            Some((label, _)) if !label.is_empty() => self.intern(label),
            _ => self.intern(fallback),
        }
    }

    /// Records a raw event: into this thread's installed ring when it
    /// belongs to this tracer, else directly into the shared sink. No-op
    /// while disabled.
    pub fn record(self: &Arc<Self>, event: RawEvent) {
        if !self.enabled() {
            return;
        }
        let ringed = THREAD_RING.with(|cell| {
            let mut slot = cell.borrow_mut();
            match slot.as_mut() {
                Some(ring) if Arc::ptr_eq(&ring.tracer, self) => {
                    ring.push(event);
                    true
                }
                _ => false,
            }
        });
        if !ringed {
            self.sink.lock().push(event);
        }
    }

    /// Records a span of `kind` that started at `start_ns` and ends now.
    pub fn span(self: &Arc<Self>, kind: EventKind, site: TraceSite, start_ns: u64) {
        if !self.enabled() {
            return;
        }
        let dur_ns = self.now_ns().saturating_sub(start_ns);
        self.record(site.raw(kind, start_ns, dur_ns, 0));
    }

    /// Records an instant of `kind` happening now, with payload `arg`.
    pub fn instant(self: &Arc<Self>, kind: EventKind, site: TraceSite, arg: u64) {
        if !self.enabled() {
            return;
        }
        self.record(site.raw(kind, self.now_ns(), 0, arg));
    }

    /// Installs a pre-allocated event ring for the calling thread; events
    /// this thread records land in it without synchronization. The ring
    /// flushes into the tracer's sink when the guard drops. Returns a
    /// no-op guard while the tracer is disabled.
    pub fn install_thread_ring(self: &Arc<Self>) -> ThreadRingGuard {
        if !self.enabled() {
            return ThreadRingGuard;
        }
        let capacity = self.ring_capacity.load(Ordering::Relaxed).max(1);
        THREAD_RING.with(|cell| {
            // Flush any ring a previous guard leaked on this thread.
            if let Some(old) = cell.borrow_mut().replace(ThreadRing {
                tracer: Arc::clone(self),
                buf: Vec::with_capacity(capacity),
                capacity,
                written: 0,
            }) {
                old.flush();
            }
        });
        ThreadRingGuard
    }

    /// Drains everything recorded so far into an ordered [`Timeline`] and
    /// resets the sink and drop counter. Rings still installed on live
    /// threads are *not* drained — drop their guards first (the workflow
    /// runtime drains only after every rank and supervisor has joined).
    pub fn drain(&self) -> Timeline {
        let mut raw = std::mem::take(&mut *self.sink.lock());
        raw.sort_by_key(|e| (e.start_ns, e.dur_ns, e.rank));
        let names = self.interner.lock().names.clone();
        let resolve = |id: u32| names.get(id as usize).cloned().unwrap_or_default();
        let events = raw
            .into_iter()
            .map(|e| TraceEvent {
                kind: e.kind,
                component: resolve(e.label),
                stream: resolve(e.stream),
                rank: e.rank,
                step: e.step,
                start: Duration::from_nanos(e.start_ns),
                duration: Duration::from_nanos(e.dur_ns),
                arg: e.arg,
            })
            .collect();
        Timeline {
            events,
            dropped: self.dropped.swap(0, Ordering::Relaxed),
        }
    }
}

/// The stamp shared by every event from one instrumentation site:
/// interned component label, interned stream, rank, and step.
#[derive(Debug, Clone, Copy)]
pub struct TraceSite {
    /// Interned component label (0 = none).
    pub label: u32,
    /// Interned stream name (0 = none).
    pub stream: u32,
    /// Rank within the component or endpoint group.
    pub rank: u32,
    /// Transport step.
    pub step: u64,
}

impl TraceSite {
    /// A component-scoped site (no stream).
    pub fn component(label: u32, rank: usize, step: u64) -> TraceSite {
        TraceSite {
            label,
            stream: 0,
            rank: rank as u32,
            step,
        }
    }

    /// A stream-scoped site (no component label).
    pub fn stream(stream: u32, rank: usize, step: u64) -> TraceSite {
        TraceSite {
            label: 0,
            stream,
            rank: rank as u32,
            step,
        }
    }

    /// Attaches a stream id (builder style).
    pub fn on_stream(mut self, stream: u32) -> TraceSite {
        self.stream = stream;
        self
    }

    fn raw(self, kind: EventKind, start_ns: u64, dur_ns: u64, arg: u64) -> RawEvent {
        RawEvent {
            kind,
            label: self.label,
            stream: self.stream,
            rank: self.rank,
            step: self.step,
            start_ns,
            dur_ns,
            arg,
        }
    }
}

struct ThreadRing {
    tracer: Arc<Tracer>,
    buf: Vec<RawEvent>,
    capacity: usize,
    /// Total events pushed; `written - buf.len()` were overwritten.
    written: u64,
}

impl ThreadRing {
    fn push(&mut self, event: RawEvent) {
        let idx = (self.written % self.capacity as u64) as usize;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[idx] = event;
        }
        self.written += 1;
    }

    /// Flushes in record order (oldest surviving event first) and accounts
    /// overwritten events as dropped.
    fn flush(self) {
        let tracer = self.tracer;
        let overwritten = self.written.saturating_sub(self.buf.len() as u64);
        if overwritten > 0 {
            tracer.dropped.fetch_add(overwritten, Ordering::Relaxed);
        }
        if self.buf.is_empty() {
            return;
        }
        let mut sink = tracer.sink.lock();
        if self.written > self.buf.len() as u64 {
            // Wrapped: the oldest surviving event sits at the next
            // overwrite index.
            let split = (self.written % self.capacity as u64) as usize;
            sink.extend_from_slice(&self.buf[split..]);
            sink.extend_from_slice(&self.buf[..split]);
        } else {
            sink.extend_from_slice(&self.buf);
        }
    }
}

thread_local! {
    static THREAD_RING: RefCell<Option<ThreadRing>> = const { RefCell::new(None) };
}

/// Guard returned by [`Tracer::install_thread_ring`]; dropping it flushes
/// the calling thread's ring into the tracer sink.
#[must_use = "dropping the guard flushes the ring; hold it for the thread's lifetime"]
pub struct ThreadRingGuard;

impl Drop for ThreadRingGuard {
    fn drop(&mut self) {
        THREAD_RING.with(|cell| {
            if let Some(ring) = cell.borrow_mut().take() {
                ring.flush();
            }
        });
    }
}

/// Everything one run recorded, ordered by start time, with resolved
/// names. Attached to the workflow report and feeding every exporter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// All events, sorted by start offset.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrite (oldest-first eviction).
    pub dropped: u64,
}

impl Timeline {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded (tracing disabled, or drained twice).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind, in start order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Chrome trace-event JSON (the "JSON Array Format" with metadata),
    /// loadable in Perfetto / `chrome://tracing`.
    ///
    /// Tracks: one process per component (threads = ranks) and one process
    /// per stream (threads = endpoint ranks). Spans render as complete
    /// (`"X"`) events with microsecond timestamps; instants as thread-
    /// scoped `"i"` events carrying their payload in `args`.
    pub fn chrome_trace_json(&self) -> String {
        // Stable pid assignment: components first (sorted), then streams,
        // so diffing two exports of the same workflow is meaningful.
        let mut components: Vec<&str> = self
            .events
            .iter()
            .filter(|e| !e.component.is_empty())
            .map(|e| e.component.as_str())
            .collect();
        components.sort_unstable();
        components.dedup();
        let mut streams: Vec<&str> = self
            .events
            .iter()
            .filter(|e| e.component.is_empty() && !e.stream.is_empty())
            .map(|e| e.stream.as_str())
            .collect();
        streams.sort_unstable();
        streams.dedup();
        let pid_of = |e: &TraceEvent| -> usize {
            if !e.component.is_empty() {
                1 + components.binary_search(&e.component.as_str()).unwrap_or(0)
            } else if !e.stream.is_empty() {
                1 + components.len() + streams.binary_search(&e.stream.as_str()).unwrap_or(0)
            } else {
                0
            }
        };

        let mut entries: Vec<String> = Vec::new();
        for (i, name) in components.iter().enumerate() {
            entries.push(format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                1 + i,
                json_string(name)
            ));
        }
        for (i, name) in streams.iter().enumerate() {
            entries.push(format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                1 + components.len() + i,
                json_string(&format!("stream {name}"))
            ));
        }
        for e in &self.events {
            let pid = pid_of(e);
            let ts = e.start.as_nanos() as f64 / 1e3;
            let mut args = format!("\"step\":{}", e.step);
            if !e.stream.is_empty() && !e.component.is_empty() {
                args.push_str(&format!(",\"stream\":{}", json_string(&e.stream)));
            }
            if e.arg != 0 {
                args.push_str(&format!(",\"arg\":{}", e.arg));
            }
            if e.kind.is_span() {
                let dur = e.duration.as_nanos() as f64 / 1e3;
                entries.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"name\":\"{}\",\
                     \"cat\":\"{}\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{{args}}}}}",
                    e.rank,
                    e.kind.name(),
                    category(e.kind),
                ));
            } else {
                entries.push(format!(
                    "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{},\"name\":\"{}\",\
                     \"cat\":\"{}\",\"ts\":{ts:.3},\"s\":\"t\",\"args\":{{{args}}}}}",
                    e.rank,
                    e.kind.name(),
                    category(e.kind),
                ));
            }
        }
        format!(
            "{{\n\"traceEvents\":[\n{}\n],\n\"displayTimeUnit\":\"ms\",\n\
             \"otherData\":{{\"schema\":\"smartblock.trace.v1\",\"dropped_events\":{}}}\n}}\n",
            entries.join(",\n"),
            self.dropped
        )
    }

    /// Log-bucketed latency histograms, one per (component, span phase).
    /// Bucket `i` counts spans with duration in `[2^i, 2^(i+1))` ns.
    pub fn latency_histograms(&self) -> Vec<PhaseHistogram> {
        let mut by_key: BTreeMap<(String, EventKind), PhaseHistogram> = BTreeMap::new();
        for e in &self.events {
            if !e.kind.is_span() {
                continue;
            }
            let who = if e.component.is_empty() {
                format!("stream {}", e.stream)
            } else {
                e.component.clone()
            };
            let h = by_key
                .entry((who.clone(), e.kind))
                .or_insert_with(|| PhaseHistogram {
                    component: who,
                    phase: e.kind,
                    count: 0,
                    total: Duration::ZERO,
                    buckets: vec![0; 64],
                });
            h.record(e.duration);
        }
        by_key.into_values().collect()
    }

    /// A fixed-width text waterfall: one row per (component, rank) track,
    /// step spans drawn to scale with their wait fraction shaded. The
    /// quick look at "where did the time go" without leaving the terminal.
    pub fn waterfall(&self) -> String {
        const WIDTH: usize = 72;
        let span_end = self
            .events
            .iter()
            .map(|e| e.end())
            .max()
            .unwrap_or_default();
        let total_ns = span_end.as_nanos().max(1) as f64;
        let mut tracks: BTreeMap<(String, u32), Vec<char>> = BTreeMap::new();
        let mut paint = |key: (String, u32), e: &TraceEvent, glyph: char| {
            let row = tracks.entry(key).or_insert_with(|| vec![' '; WIDTH]);
            let lo = (e.start.as_nanos() as f64 / total_ns * WIDTH as f64) as usize;
            let hi = (e.end().as_nanos() as f64 / total_ns * WIDTH as f64).ceil() as usize;
            for cell in row
                .iter_mut()
                .take(hi.clamp(lo + 1, WIDTH))
                .skip(lo.min(WIDTH - 1))
            {
                // Wait shading and instant markers win over the step body.
                if *cell == ' ' || (*cell == '=' && glyph != '=') {
                    *cell = glyph;
                }
            }
        };
        for e in &self.events {
            let key = if e.component.is_empty() {
                (format!("stream {}", e.stream), e.rank)
            } else {
                (e.component.clone(), e.rank)
            };
            match e.kind {
                EventKind::Step => paint(key, e, '='),
                EventKind::Wait | EventKind::WriterBlocked | EventKind::ReaderBlocked => {
                    paint(key, e, '.')
                }
                EventKind::Publish => paint(key, e, '+'),
                EventKind::FaultInjected => paint(key, e, 'X'),
                EventKind::RestartAttempt => paint(key, e, 'R'),
                EventKind::Degraded => paint(key, e, 'D'),
                _ => {}
            }
        }
        let label_w = tracks
            .keys()
            .map(|(name, _)| name.len() + 3)
            .max()
            .unwrap_or(8);
        let mut out = format!(
            "timeline: {:.3}ms, {} events, {} dropped \
             (= step, . wait, + publish, X fault, R restart, D degrade)\n",
            span_end.as_secs_f64() * 1e3,
            self.events.len(),
            self.dropped
        );
        for ((name, rank), row) in &tracks {
            let label = format!("{name}/{rank}");
            out.push_str(&format!(
                "{label:>label_w$} |{}|\n",
                row.iter().collect::<String>()
            ));
        }
        out
    }
}

/// One component phase's log-bucketed latency distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseHistogram {
    /// Component label (or `stream <name>` for endpoint-blocked spans).
    pub component: String,
    /// The span phase the histogram covers.
    pub phase: EventKind,
    /// Spans recorded.
    pub count: u64,
    /// Sum of span durations.
    pub total: Duration,
    /// `buckets[i]` counts spans with duration in `[2^i, 2^(i+1))` ns.
    pub buckets: Vec<u64>,
}

impl PhaseHistogram {
    fn record(&mut self, duration: Duration) {
        let ns = duration.as_nanos() as u64;
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        let last = self.buckets.len() - 1;
        self.buckets[bucket.min(last)] += 1;
        self.count += 1;
        self.total += duration;
    }

    /// Mean span duration.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        self.total / self.count as u32
    }

    /// A one-line render: component, phase, count, mean, and the populated
    /// bucket range as `2^lo..2^hi ns`.
    pub fn render(&self) -> String {
        let lo = self.buckets.iter().position(|&c| c > 0).unwrap_or(0);
        let hi = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|b| b + 1)
            .unwrap_or(0);
        format!(
            "{:<16} {:<10} n={:<6} mean={:>10.3}us range=2^{lo}..2^{hi}ns",
            self.component,
            self.phase.name(),
            self.count,
            self.mean().as_nanos() as f64 / 1e3,
        )
    }
}

fn category(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Step | EventKind::Wait | EventKind::Compute | EventKind::Publish => "phase",
        EventKind::WriterBlocked
        | EventKind::ReaderBlocked
        | EventKind::StepCommitted
        | EventKind::EndOfStream
        | EventKind::Poisoned
        | EventKind::Compressed => "stream",
        EventKind::FaultInjected
        | EventKind::RestartAttempt
        | EventKind::Degraded
        | EventKind::TriggerSkipped => "supervisor",
    }
}

/// Minimal JSON string escaping for interned names (quotes, backslashes,
/// control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(start_ns: u64, step: u64) -> RawEvent {
        RawEvent {
            kind: EventKind::Step,
            label: 0,
            stream: 0,
            rank: 0,
            step,
            start_ns,
            dur_ns: 10,
            arg: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Arc::new(Tracer::new());
        t.record(event(1, 0));
        t.span(EventKind::Wait, TraceSite::component(0, 0, 0), 0);
        t.instant(EventKind::Poisoned, TraceSite::stream(0, 0, 0), 0);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn ring_preserves_record_order_across_flush() {
        let t = Arc::new(Tracer::new());
        t.enable(&TraceConfig::default());
        {
            let _guard = t.install_thread_ring();
            for i in 0..10 {
                t.record(event(i, i));
            }
        }
        let tl = t.drain();
        assert_eq!(tl.dropped, 0);
        let steps: Vec<u64> = tl.events.iter().map(|e| e.step).collect();
        assert_eq!(steps, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let t = Arc::new(Tracer::new());
        t.enable(&TraceConfig::new().with_ring_capacity(4));
        {
            let _guard = t.install_thread_ring();
            for i in 0..10 {
                t.record(event(i, i));
            }
        }
        let tl = t.drain();
        assert_eq!(tl.dropped, 6, "10 recorded into a 4-slot ring");
        let steps: Vec<u64> = tl.events.iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![6, 7, 8, 9], "newest events survive, in order");
    }

    #[test]
    fn ringless_threads_fall_back_to_the_sink() {
        let t = Arc::new(Tracer::new());
        t.enable(&TraceConfig::default());
        t.record(event(5, 42)); // no ring installed on this thread
        let tl = t.drain();
        assert_eq!(tl.events.len(), 1);
        assert_eq!(tl.events[0].step, 42);
    }

    #[test]
    fn drain_sorts_across_threads_and_resolves_names() {
        let t = Arc::new(Tracer::new());
        t.enable(&TraceConfig::default());
        let label = t.intern("magnitude");
        let stream = t.intern("r.fp");
        let t2 = Arc::clone(&t);
        let handle = std::thread::spawn(move || {
            let _guard = t2.install_thread_ring();
            t2.record(RawEvent {
                kind: EventKind::Wait,
                label: 0,
                stream,
                rank: 1,
                step: 0,
                start_ns: 50,
                dur_ns: 5,
                arg: 0,
            });
        });
        handle.join().unwrap();
        t.record(RawEvent {
            kind: EventKind::Step,
            label,
            stream: 0,
            rank: 0,
            step: 0,
            start_ns: 10,
            dur_ns: 100,
            arg: 0,
        });
        let tl = t.drain();
        assert_eq!(tl.events.len(), 2);
        assert_eq!(tl.events[0].start, Duration::from_nanos(10));
        assert_eq!(tl.events[0].component, "magnitude");
        assert_eq!(tl.events[1].stream, "r.fp");
        assert!(t.drain().is_empty(), "drain resets the sink");
    }

    #[test]
    fn intern_is_stable_and_reserves_zero() {
        let t = Tracer::new();
        assert_eq!(t.intern(""), 0);
        let a = t.intern("select");
        assert_eq!(t.intern("select"), a);
        assert_ne!(t.intern("histogram"), a);
    }

    #[test]
    fn chrome_export_shapes_spans_and_instants() {
        let t = Arc::new(Tracer::new());
        t.enable(&TraceConfig::default());
        let label = t.intern("select");
        let stream = t.intern("s.fp");
        t.record(RawEvent {
            kind: EventKind::Step,
            label,
            stream: 0,
            rank: 2,
            step: 7,
            start_ns: 1000,
            dur_ns: 2000,
            arg: 0,
        });
        t.record(RawEvent {
            kind: EventKind::Poisoned,
            label: 0,
            stream,
            rank: 0,
            step: 7,
            start_ns: 1500,
            dur_ns: 0,
            arg: 0,
        });
        let json = t.drain().chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("smartblock.trace.v1"));
        assert!(json.contains("\"ph\":\"X\"") && json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"select\""));
        assert!(json.contains("\"name\":\"stream s.fp\""));
        assert!(json.contains("\"tid\":2"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn latency_histograms_bucket_by_log2() {
        let t = Arc::new(Tracer::new());
        t.enable(&TraceConfig::default());
        let label = t.intern("hist");
        for dur in [1u64, 2, 3, 1024] {
            t.record(RawEvent {
                kind: EventKind::Compute,
                label,
                stream: 0,
                rank: 0,
                step: 0,
                start_ns: 0,
                dur_ns: dur,
                arg: 0,
            });
        }
        let hs = t.drain().latency_histograms();
        assert_eq!(hs.len(), 1);
        let h = &hs[0];
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 1, "1ns -> bucket 0");
        assert_eq!(h.buckets[1], 2, "2-3ns -> bucket 1");
        assert_eq!(h.buckets[10], 1, "1024ns -> bucket 10");
        assert!(h.render().contains("compute"));
    }

    #[test]
    fn waterfall_renders_one_row_per_track() {
        let t = Arc::new(Tracer::new());
        t.enable(&TraceConfig::default());
        let label = t.intern("gen");
        for rank in 0..2u32 {
            t.record(RawEvent {
                kind: EventKind::Step,
                label,
                stream: 0,
                rank,
                step: 0,
                start_ns: 0,
                dur_ns: 1_000_000,
                arg: 0,
            });
        }
        let text = t.drain().waterfall();
        assert!(text.contains("gen/0"));
        assert!(text.contains("gen/1"));
        assert!(text.contains('='));
    }
}
