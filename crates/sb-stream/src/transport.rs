//! The transport seam: what a backend must provide for
//! [`StreamHub`](crate::StreamHub) to run a workflow over it.
//!
//! [`StreamWriter`](crate::StreamWriter) and
//! [`StreamReader`](crate::StreamReader) own all protocol bookkeeping
//! (lockstep assertions, step numbering, trace spans) and the reader owns
//! the entire MxN bounding-box assembly — both operate on frozen
//! [`StepContents`] and are completely backend-agnostic. A backend supplies
//! only the blocking data plane behind them:
//!
//! * a [`WriterEndpoint`] that accepts a rank's steps (with backpressure),
//! * a [`ReaderEndpoint`] that produces committed steps (or end-of-stream),
//! * a [`Transport`] that opens endpoints by stream name and carries the
//!   supervision verbs (poison, forced EOS, detach, restart preparation).
//!
//! Two backends exist: [`InProcTransport`] (streams in shared memory, steps
//! moved by `Arc` — the original hub) and [`crate::tcp`] (length-prefixed
//! frames over `std::net::TcpStream` to a broker process).
//!
//! ## Contract
//!
//! Opening endpoints is infallible so components never special-case the
//! backend; a backend that must connect somewhere does so eagerly at open
//! and surfaces any failure as a [`StreamError`] from the first blocking
//! call. Blocking calls return [`StreamError::Timeout`] after the hub
//! deadline and [`StreamError::PeerGone`] when the peer or the supervisor
//! tore the stream down — never a panic, never a hang.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sb_data::Chunk;

use crate::error::StreamResult;
use crate::metrics::{Counters, StreamMetrics};
pub use crate::stream::{StepContents, VarSlot};
use crate::stream::{Stream, WriterOptions};
use crate::trace::Tracer;

/// One writer rank's connection to a stream: accepts its steps in order.
///
/// The handle above it guarantees calls arrive as
/// `begin_step(s) → put(s)* → end_step(s)` with `s` strictly increasing,
/// terminated by exactly one of `close`, `abandon`, or `disconnect`.
pub trait WriterEndpoint: Send {
    /// Opens `step`, blocking while the writer-side buffer is full.
    fn begin_step(&mut self, step: u64) -> StreamResult<()>;

    /// Contributes one chunk to the open step.
    fn put(&mut self, step: u64, chunk: Chunk);

    /// Commits the open step; in rendezvous mode, blocks until consumed.
    fn end_step(&mut self, step: u64) -> StreamResult<()>;

    /// Cleanly closes this rank's side; the last rank closing yields EOS.
    fn close(&mut self);

    /// Walks away *silently*: the stream is left exactly as it is, so the
    /// workflow supervisor — not the transport — decides whether the
    /// component restarts (resuming after the last complete step) or the
    /// stream is torn down. Used by failing ranks.
    fn abandon(&mut self);

    /// Walks away *noisily*: the rank is gone for good and no supervisor
    /// will resurrect it. Readers blocked on steps this writer group can no
    /// longer commit fail promptly with `PeerGone`.
    fn disconnect(&mut self);
}

/// One reader rank's connection to a stream: produces committed steps.
pub trait ReaderEndpoint: Send {
    /// Blocks until `step` is committed (`Some`) or the stream ended
    /// cleanly (`None`).
    fn fetch_step(&mut self, step: u64) -> StreamResult<Option<StepContents>>;

    /// Releases `step`; once every rank of the group has, the writer-side
    /// buffer slot is freed.
    fn release_step(&mut self, step: u64);

    /// Steps the writer group has committed so far (diagnostics).
    fn committed_steps(&self) -> u64;
}

/// What [`Transport::open_writer`] hands back: the endpoint plus the step
/// the writer group starts at and the tracer identity for blocking spans.
pub struct WriterConnection {
    pub(crate) endpoint: Box<dyn WriterEndpoint>,
    pub(crate) start_step: u64,
    pub(crate) tracer: Arc<Tracer>,
    pub(crate) trace_id: u32,
    /// The stream's counter block (the TCP broker charges received frame
    /// bytes here).
    pub(crate) counters: Arc<Counters>,
}

impl WriterConnection {
    /// Builds a connection for a custom backend (with a fresh counter
    /// block; in-tree backends share one per stream).
    pub fn new(
        endpoint: Box<dyn WriterEndpoint>,
        start_step: u64,
        tracer: Arc<Tracer>,
        trace_id: u32,
    ) -> WriterConnection {
        WriterConnection {
            endpoint,
            start_step,
            tracer,
            trace_id,
            counters: Arc::new(Counters::default()),
        }
    }
}

/// What [`Transport::open_reader`] hands back: the endpoint, the first step
/// this rank will observe, the tracer identity, and the counter block the
/// reader's MxN assembly path charges its copies/reads to.
pub struct ReaderConnection {
    pub(crate) endpoint: Box<dyn ReaderEndpoint>,
    pub(crate) first_step: u64,
    pub(crate) tracer: Arc<Tracer>,
    pub(crate) trace_id: u32,
    pub(crate) counters: Arc<Counters>,
}

impl ReaderConnection {
    /// Builds a connection for a custom backend (with a fresh counter
    /// block; in-tree backends share one per stream).
    pub fn new(
        endpoint: Box<dyn ReaderEndpoint>,
        first_step: u64,
        tracer: Arc<Tracer>,
        trace_id: u32,
    ) -> ReaderConnection {
        ReaderConnection {
            endpoint,
            first_step,
            tracer,
            trace_id,
            counters: Arc::new(Counters::default()),
        }
    }
}

/// A stream transport backend: name-based endpoint rendezvous plus the
/// supervision verbs the workflow runtime drives.
pub trait Transport: Send + Sync {
    /// Short backend name for diagnostics ("inproc", "tcp").
    fn backend(&self) -> &'static str;

    /// Opens the writer side of `name` for one rank of a writer group.
    fn open_writer(
        &self,
        name: &str,
        rank: usize,
        nranks: usize,
        options: WriterOptions,
    ) -> WriterConnection;

    /// Opens the reader side of `name` for one rank of reader group `group`.
    fn open_reader(&self, name: &str, group: &str, rank: usize, nranks: usize) -> ReaderConnection;

    /// Names of all streams opened so far, sorted.
    fn stream_names(&self) -> Vec<String>;

    /// A snapshot of one stream's transfer counters.
    fn metrics(&self, name: &str) -> Option<StreamMetrics>;

    /// Snapshots of every stream, sorted by name.
    fn all_metrics(&self) -> Vec<StreamMetrics>;

    /// Poisons every stream: blocked and future operations return
    /// `PeerGone` with `reason`.
    fn poison_all(&self, reason: &str);

    /// Forces a clean EOS on `name` (creating it if necessary).
    fn force_end_of_stream(&self, name: &str);

    /// Detaches reader group `group` of `name` so it stops holding steps.
    fn detach_reader_group(&self, name: &str, group: &str);

    /// Prepares input subscriptions and output streams for a component
    /// restart.
    fn prepare_restart(&self, inputs: &[(String, String)], outputs: &[String]);

    /// Propagates a deadlock-timeout override into the backend.
    fn set_wait_timeout(&self, timeout: Duration);

    /// A point-in-time copy of `name`'s currently buffered *committed*
    /// steps, as `(step, contents)` pairs in step order, without disturbing
    /// the stream protocol. `None` means the backend does not support
    /// snapshots (the TCP client has no request/response control path —
    /// snapshot on the broker side instead).
    fn snapshot_stream(&self, name: &str) -> Option<Vec<(u64, StepContents)>> {
        let _ = name;
        None
    }
}

// ---- the in-proc backend -------------------------------------------------

/// The original shared-memory backend: streams live in a map, steps move by
/// `Arc` clone, blocking is a condvar wait.
pub(crate) struct InProcTransport {
    streams: Mutex<HashMap<String, Arc<Stream>>>,
    /// Micros; shared with the owning hub and every stream so a timeout
    /// override reaches streams that already exist.
    wait_timeout_micros: Arc<AtomicU64>,
    tracer: Arc<Tracer>,
}

impl InProcTransport {
    pub(crate) fn new(wait_timeout_micros: Arc<AtomicU64>, tracer: Arc<Tracer>) -> InProcTransport {
        InProcTransport {
            streams: Mutex::new(HashMap::new()),
            wait_timeout_micros,
            tracer,
        }
    }

    fn stream(&self, name: &str) -> Arc<Stream> {
        let mut streams = self.streams.lock();
        Arc::clone(streams.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Stream::new(
                name.to_string(),
                Arc::clone(&self.wait_timeout_micros),
                Arc::clone(&self.tracer),
            ))
        }))
    }
}

struct InProcWriter {
    stream: Arc<Stream>,
    rank: usize,
    nranks: usize,
}

impl WriterEndpoint for InProcWriter {
    fn begin_step(&mut self, step: u64) -> StreamResult<()> {
        self.stream.writer_begin_step(step)
    }

    fn put(&mut self, step: u64, chunk: Chunk) {
        self.stream.writer_put(step, chunk);
    }

    fn end_step(&mut self, step: u64) -> StreamResult<()> {
        self.stream.writer_end_step(step, self.rank, self.nranks)
    }

    fn close(&mut self) {
        self.stream.writer_close(self.rank, self.nranks);
    }

    fn abandon(&mut self) {
        // Deliberately nothing: a failing rank leaves no trace so the
        // supervisor's restart/degrade decision sees the stream unchanged.
    }

    fn disconnect(&mut self) {
        self.stream.writer_disconnect();
    }
}

struct InProcReader {
    stream: Arc<Stream>,
    group: String,
    nranks: usize,
}

impl ReaderEndpoint for InProcReader {
    fn fetch_step(&mut self, step: u64) -> StreamResult<Option<StepContents>> {
        self.stream.reader_begin_step(step)
    }

    fn release_step(&mut self, step: u64) {
        self.stream.reader_end_step(&self.group, step, self.nranks);
    }

    fn committed_steps(&self) -> u64 {
        self.stream.counters.steps_committed.load(Ordering::Relaxed)
    }
}

impl Transport for InProcTransport {
    fn backend(&self) -> &'static str {
        "inproc"
    }

    fn open_writer(
        &self,
        name: &str,
        rank: usize,
        nranks: usize,
        options: WriterOptions,
    ) -> WriterConnection {
        let stream = self.stream(name);
        let start_step = stream.register_writer(nranks, options);
        WriterConnection {
            start_step,
            tracer: Arc::clone(&stream.tracer),
            trace_id: stream.trace_id,
            counters: Arc::clone(&stream.counters),
            endpoint: Box::new(InProcWriter {
                stream,
                rank,
                nranks,
            }),
        }
    }

    fn open_reader(&self, name: &str, group: &str, rank: usize, nranks: usize) -> ReaderConnection {
        let _ = rank;
        let stream = self.stream(name);
        let first_step = stream.register_reader(group, nranks);
        ReaderConnection {
            first_step,
            tracer: Arc::clone(&stream.tracer),
            trace_id: stream.trace_id,
            counters: Arc::clone(&stream.counters),
            endpoint: Box::new(InProcReader {
                stream,
                group: group.to_string(),
                nranks,
            }),
        }
    }

    fn stream_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.streams.lock().keys().cloned().collect();
        names.sort();
        names
    }

    fn metrics(&self, name: &str) -> Option<StreamMetrics> {
        self.streams
            .lock()
            .get(name)
            .map(|s| s.counters.snapshot(name))
    }

    fn all_metrics(&self) -> Vec<StreamMetrics> {
        let streams = self.streams.lock();
        let mut out: Vec<StreamMetrics> = streams
            .iter()
            .map(|(name, s)| s.counters.snapshot(name))
            .collect();
        out.sort_by(|a, b| a.stream.cmp(&b.stream));
        out
    }

    fn poison_all(&self, reason: &str) {
        for stream in self.streams.lock().values() {
            stream.poison(reason);
        }
    }

    fn force_end_of_stream(&self, name: &str) {
        self.stream(name).force_end_of_stream();
    }

    fn detach_reader_group(&self, name: &str, group: &str) {
        self.stream(name).detach_reader_group(group);
    }

    fn prepare_restart(&self, inputs: &[(String, String)], outputs: &[String]) {
        for (stream, group) in inputs {
            self.stream(stream).reset_reader_group(group);
        }
        for stream in outputs {
            self.stream(stream).reattach_writer();
        }
    }

    fn set_wait_timeout(&self, _timeout: Duration) {
        // The hub and every stream share one AtomicU64; the hub already
        // stored the new value before delegating here.
    }

    fn snapshot_stream(&self, name: &str) -> Option<Vec<(u64, StepContents)>> {
        self.streams.lock().get(name).map(|s| s.snapshot())
    }
}
