//! Typed errors for the blocking stream paths.
//!
//! Before the fault-tolerance redesign a blocked stream operation panicked
//! after the hub timeout; these errors carry the same diagnostic payload but
//! let the caller (and the workflow supervisor) decide what to do about it.

use std::fmt;
use std::time::Duration;

/// Result alias for fallible stream operations.
pub type StreamResult<T> = Result<T, StreamError>;

/// Why a blocking stream operation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The operation waited longer than the hub timeout. The diagnostic
    /// fields snapshot the stream state at expiry — the same information the
    /// old panic message carried.
    Timeout {
        /// Name of the stream the caller was blocked on.
        stream: String,
        /// What the caller was waiting for ("buffer space", "a committed
        /// step", "rendezvous consumption").
        waiting_for: String,
        /// The timeout that expired.
        timeout: Duration,
        /// Stream-state snapshot at expiry (writers/readers/closed/queue).
        detail: String,
    },
    /// The stream was poisoned: a peer failed and the workflow is being
    /// torn down, so whatever the caller was waiting for will never happen.
    PeerGone {
        /// Name of the stream the caller was blocked on.
        stream: String,
        /// Why the stream was poisoned.
        reason: String,
    },
}

impl StreamError {
    /// The stream the error refers to.
    pub fn stream(&self) -> &str {
        match self {
            StreamError::Timeout { stream, .. } => stream,
            StreamError::PeerGone { stream, .. } => stream,
        }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Timeout {
                stream,
                waiting_for,
                timeout,
                detail,
            } => write!(
                f,
                "stream {stream:?}: timed out after {timeout:?} waiting for {waiting_for} ({detail})"
            ),
            StreamError::PeerGone { stream, reason } => {
                write!(f, "stream {stream:?}: peer gone: {reason}")
            }
        }
    }
}

impl std::error::Error for StreamError {}
