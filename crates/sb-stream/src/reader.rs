//! The per-rank reader handle: step discovery and bounding-box gets.

use std::collections::BTreeMap;
use std::sync::Arc;

use sb_data::region::copy_region;
use sb_data::{Buffer, DataError, DataResult, Region, SharedBuffer, Variable, VariableMeta};

use crate::error::StreamResult;
use crate::metrics::Counters;
use crate::trace::{EventKind, TraceSite, Tracer};
use crate::transport::{ReaderConnection, ReaderEndpoint, StepContents};

/// What [`StreamReader::begin_step`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// A step is open; its transport step id is given.
    Ready(u64),
    /// All writer ranks closed and every step has been consumed.
    EndOfStream,
}

/// One reader rank's handle onto a stream.
///
/// Between `begin_step` and `end_step` the handle exposes the step's
/// self-describing metadata and serves bounding-box [`StreamReader::get`]
/// requests, assembling each box from every intersecting writer chunk —
/// FlexPath's MxN exchange.
///
/// The assembly runs over the frozen [`StepContents`] regardless of which
/// transport delivered them: the in-proc backend shares the committed slot
/// by `Arc`, the TCP backend decodes the step from prefetched frames. The
/// copy-discipline fast paths below therefore apply to both.
pub struct StreamReader {
    endpoint: Box<dyn ReaderEndpoint>,
    counters: Arc<Counters>,
    tracer: Arc<Tracer>,
    trace_id: u32,
    group: String,
    rank: usize,
    nranks: usize,
    next_step: u64,
    current: Option<StepContents>,
    force_copy: bool,
}

impl StreamReader {
    pub(crate) fn new(
        conn: ReaderConnection,
        group: String,
        rank: usize,
        nranks: usize,
    ) -> StreamReader {
        StreamReader {
            endpoint: conn.endpoint,
            counters: conn.counters,
            tracer: conn.tracer,
            trace_id: conn.trace_id,
            group,
            rank,
            nranks,
            next_step: conn.first_step,
            current: None,
            force_copy: false,
        }
    }

    /// Disables the zero-copy fast paths, forcing every `get` through the
    /// zero-fill + `copy_region` assembly.
    ///
    /// An ablation knob for benchmarks: the same binary measures the data
    /// plane with and without copy elision. Workflows never set this.
    pub fn set_force_copy(&mut self, force: bool) {
        self.force_copy = force;
    }

    /// The reader group this handle belongs to.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// This rank's id within the reader group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Size of the reader group.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The step the handle is currently in (or will ask for next).
    pub fn current_step(&self) -> u64 {
        self.next_step
    }

    /// Blocks until the next step is available (or the stream ended).
    ///
    /// Returns [`crate::StreamError::Timeout`] if the writer side stays
    /// silent past the hub timeout, or [`crate::StreamError::PeerGone`] if
    /// the workflow supervisor poisoned the stream — a stalled peer is a
    /// typed error, never a hang or a panic.
    pub fn begin_step(&mut self) -> StreamResult<StepStatus> {
        assert!(self.current.is_none(), "begin_step inside an open step");
        let start_ns = if self.tracer.enabled() {
            self.tracer.now_ns()
        } else {
            0
        };
        match self.endpoint.fetch_step(self.next_step)? {
            Some(contents) => {
                self.tracer.span(
                    EventKind::ReaderBlocked,
                    TraceSite::stream(self.trace_id, self.rank, self.next_step),
                    start_ns,
                );
                self.current = Some(contents);
                Ok(StepStatus::Ready(self.next_step))
            }
            None => Ok(StepStatus::EndOfStream),
        }
    }

    fn contents(&self) -> &StepContents {
        self.current
            .as_ref()
            .expect("no step is open; call begin_step first")
    }

    /// Names of the variables present in the open step.
    pub fn variables(&self) -> Vec<String> {
        self.contents().keys().cloned().collect()
    }

    /// Self-describing metadata of `name` in the open step.
    pub fn meta(&self, name: &str) -> Option<&VariableMeta> {
        self.contents().get(name).map(|v| &v.meta)
    }

    /// Reads the bounding box `region` of variable `name`, assembled from
    /// all intersecting writer chunks.
    ///
    /// Fails if the variable is unknown, the region exceeds the global
    /// shape, or the writer chunks do not tile the requested box exactly.
    ///
    /// Copy discipline, in decreasing order of preference:
    /// 1. *Exact cover* — one chunk's region equals the request: the
    ///    chunk's allocation is shared by `Arc` clone; nothing is copied.
    /// 2. *Slab concat* — every overlap is a full-inner-extent row slab of
    ///    both the request and its chunk: slabs are appended in order into
    ///    a pre-sized buffer, skipping the zero-fill.
    /// 3. *General* — zero-fill then strided `copy_region` per chunk.
    pub fn get(&self, name: &str, region: &Region) -> DataResult<Variable> {
        let slot = self
            .contents()
            .get(name)
            .ok_or_else(|| DataError::Container {
                detail: format!("no variable {name:?} in step"),
            })?;
        let meta = &slot.meta;
        region.validate(&meta.shape)?;

        // Find every chunk intersecting the box; chunks must tile it. Any
        // pairwise overlap inside the box means double-written elements
        // (and, since the total is checked below, a matching hole
        // elsewhere).
        let mut covered = 0usize;
        let mut hits: Vec<(usize, Region)> = Vec::new();
        for (i, chunk) in slot.chunks.iter().enumerate() {
            if let Some(overlap) = chunk.region.intersect(region) {
                if hits.iter().any(|(_, o)| o.intersect(&overlap).is_some()) {
                    return Err(DataError::RegionOutOfBounds {
                        detail: format!(
                            "writer chunks of {name:?} overlap inside the requested box {region}"
                        ),
                    });
                }
                covered += overlap.len();
                hits.push((i, overlap));
            }
        }
        if covered != region.len() {
            return Err(DataError::RegionOutOfBounds {
                detail: format!(
                    "writer chunks covered {covered} of {} requested elements of {name:?} \
                     (overlapping or missing chunks)",
                    region.len()
                ),
            });
        }

        // Carry labels through, sliced to the requested box. Bounds-checked:
        // writer metadata whose header is shorter than the extent surfaces
        // as an error here, never a slice panic.
        let mut labels = BTreeMap::new();
        for (&dim, names) in &meta.labels {
            let lo = region.offset()[dim];
            let hi = region.end(dim);
            let slice = names.get(lo..hi).ok_or(DataError::MalformedHeader {
                dim,
                expected: meta.shape.size(dim),
                found: names.len(),
            })?;
            labels.insert(dim, slice.to_vec());
        }

        let counters = &self.counters;
        let byte_len = region.len() * meta.dtype.elem_bytes();
        let data: SharedBuffer =
            if !self.force_copy && hits.len() == 1 && slot.chunks[hits[0].0].region == *region {
                // Exact cover: serve the chunk's own allocation.
                counters.add_copy_elided();
                slot.chunks[hits[0].0].data.clone()
            } else if !self.force_copy
                && region.ndims() >= 1
                && !hits.is_empty()
                && hits.iter().all(|(i, o)| {
                    o.is_row_slab_of(region) && o.is_row_slab_of(&slot.chunks[*i].region)
                })
            {
                // Disjoint row slabs summing to the box tile it in order along
                // the outermost dimension: append them, no zero-fill first.
                let mut ordered: Vec<&(usize, Region)> = hits.iter().collect();
                ordered.sort_by_key(|(_, o)| o.offset()[0]);
                let mut out = Buffer::with_capacity(meta.dtype, region.len());
                for (i, o) in ordered {
                    let chunk = &slot.chunks[*i];
                    let inner: usize = chunk.region.count()[1..].iter().product();
                    let src_off = (o.offset()[0] - chunk.region.offset()[0]) * inner;
                    out.append_from(&chunk.data, src_off, o.len())?;
                }
                counters.add_zero_fill_elided();
                counters.add_copied(byte_len);
                out.into()
            } else {
                let mut out = Buffer::zeros(meta.dtype, region.len());
                for (i, overlap) in &hits {
                    let chunk = &slot.chunks[*i];
                    copy_region(&chunk.data, &chunk.region, &mut out, region, overlap)?;
                }
                counters.add_copied(byte_len);
                out.into()
            };
        counters.add_read(byte_len);

        let shape = region.local_shape(&meta.shape);
        let mut var = Variable::new(meta.name.clone(), shape, data)?;
        var.labels = labels;
        var.attrs = meta.attrs.clone();
        Ok(var)
    }

    /// Reads the entire global array of `name`.
    pub fn get_whole(&self, name: &str) -> DataResult<Variable> {
        let shape = self
            .meta(name)
            .ok_or_else(|| DataError::Container {
                detail: format!("no variable {name:?} in step"),
            })?
            .shape
            .clone();
        self.get(name, &Region::whole(&shape))
    }

    /// Steps the writer group has committed so far (diagnostics; the
    /// backpressure tests read this to observe writer progress).
    pub fn stream_committed(&self) -> u64 {
        self.endpoint.committed_steps()
    }

    /// Releases the open step; once every reader rank has done so, the
    /// writer-side buffer slot is freed.
    pub fn end_step(&mut self) {
        assert!(self.current.is_some(), "end_step without begin_step");
        self.current = None;
        self.endpoint.release_step(self.next_step);
        self.next_step += 1;
    }
}
