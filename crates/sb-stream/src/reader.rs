//! The per-rank reader handle: step discovery and bounding-box gets.

use std::collections::BTreeMap;
use std::sync::Arc;

use sb_data::region::copy_region;
use sb_data::{Buffer, DataError, DataResult, Region, Variable, VariableMeta};

use crate::stream::{StepContents, Stream};

/// What [`StreamReader::begin_step`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// A step is open; its transport step id is given.
    Ready(u64),
    /// All writer ranks closed and every step has been consumed.
    EndOfStream,
}

/// One reader rank's handle onto a stream.
///
/// Between `begin_step` and `end_step` the handle exposes the step's
/// self-describing metadata and serves bounding-box [`StreamReader::get`]
/// requests, assembling each box from every intersecting writer chunk —
/// FlexPath's MxN exchange.
pub struct StreamReader {
    stream: Arc<Stream>,
    group: String,
    rank: usize,
    nranks: usize,
    next_step: u64,
    current: Option<StepContents>,
}

impl StreamReader {
    pub(crate) fn new(
        stream: Arc<Stream>,
        group: String,
        rank: usize,
        nranks: usize,
        first_step: u64,
    ) -> StreamReader {
        StreamReader {
            stream,
            group,
            rank,
            nranks,
            next_step: first_step,
            current: None,
        }
    }

    /// The reader group this handle belongs to.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// This rank's id within the reader group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Size of the reader group.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Blocks until the next step is available (or the stream ended).
    pub fn begin_step(&mut self) -> StepStatus {
        assert!(self.current.is_none(), "begin_step inside an open step");
        match self.stream.reader_begin_step(self.next_step) {
            Some(contents) => {
                self.current = Some(contents);
                StepStatus::Ready(self.next_step)
            }
            None => StepStatus::EndOfStream,
        }
    }

    fn contents(&self) -> &StepContents {
        self.current
            .as_ref()
            .expect("no step is open; call begin_step first")
    }

    /// Names of the variables present in the open step.
    pub fn variables(&self) -> Vec<String> {
        self.contents().keys().cloned().collect()
    }

    /// Self-describing metadata of `name` in the open step.
    pub fn meta(&self, name: &str) -> Option<&VariableMeta> {
        self.contents().get(name).map(|v| &v.meta)
    }

    /// Reads the bounding box `region` of variable `name`, assembled from
    /// all intersecting writer chunks.
    ///
    /// Fails if the variable is unknown, the region exceeds the global
    /// shape, or the writer chunks do not tile the requested box exactly.
    pub fn get(&self, name: &str, region: &Region) -> DataResult<Variable> {
        let slot = self
            .contents()
            .get(name)
            .ok_or_else(|| DataError::Container {
                detail: format!("no variable {name:?} in step"),
            })?;
        let meta = &slot.meta;
        region.validate(&meta.shape)?;
        let mut out = Buffer::zeros(meta.dtype, region.len());
        let mut covered = 0usize;
        let mut overlaps: Vec<sb_data::Region> = Vec::new();
        for chunk in &slot.chunks {
            if let Some(overlap) = chunk.region.intersect(region) {
                // Chunks must tile: any pairwise overlap inside the box
                // means double-written elements (and, since the total is
                // checked below, a matching hole elsewhere).
                if overlaps.iter().any(|o| o.intersect(&overlap).is_some()) {
                    return Err(DataError::RegionOutOfBounds {
                        detail: format!(
                            "writer chunks of {name:?} overlap inside the requested box {region}"
                        ),
                    });
                }
                copy_region(&chunk.data, &chunk.region, &mut out, region, &overlap)?;
                covered += overlap.len();
                overlaps.push(overlap);
            }
        }
        if covered != region.len() {
            return Err(DataError::RegionOutOfBounds {
                detail: format!(
                    "writer chunks covered {covered} of {} requested elements of {name:?} \
                     (overlapping or missing chunks)",
                    region.len()
                ),
            });
        }
        self.stream.counters.add_read(out.byte_len());

        // Carry labels through, sliced to the requested box, and keep the
        // global dimension names on the local shape.
        let shape = region.local_shape(&meta.shape);
        let mut labels = BTreeMap::new();
        for (&dim, names) in &meta.labels {
            let lo = region.offset()[dim];
            let hi = region.end(dim);
            labels.insert(dim, names[lo..hi].to_vec());
        }
        let mut var = Variable::new(meta.name.clone(), shape, out)?;
        var.labels = labels;
        var.attrs = meta.attrs.clone();
        Ok(var)
    }

    /// Reads the entire global array of `name`.
    pub fn get_whole(&self, name: &str) -> DataResult<Variable> {
        let shape = self
            .meta(name)
            .ok_or_else(|| DataError::Container {
                detail: format!("no variable {name:?} in step"),
            })?
            .shape
            .clone();
        self.get(name, &Region::whole(&shape))
    }

    /// Steps the writer group has committed so far (diagnostics; the
    /// backpressure tests read this to observe writer progress).
    pub fn stream_committed(&self) -> u64 {
        self.stream
            .counters
            .steps_committed
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Releases the open step; once every reader rank has done so, the
    /// writer-side buffer slot is freed.
    pub fn end_step(&mut self) {
        assert!(self.current.is_some(), "end_step without begin_step");
        self.current = None;
        self.stream
            .reader_end_step(&self.group, self.next_step, self.nranks);
        self.next_step += 1;
    }
}
