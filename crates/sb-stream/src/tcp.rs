//! The TCP transport backend: length-prefixed frames to a broker process.
//!
//! The paper's components are separate executables wired by FlexPath over
//! the network; this backend gives the reproduction that process boundary.
//! One process runs a [`TcpBroker`] — an accept loop in front of an
//! ordinary in-proc [`StreamHub`], which remains the single authority for
//! step queues, backpressure, rendezvous, and supervision state. Every
//! other process opens a hub with [`StreamHub::connect`] and gets the exact
//! same `StreamWriter`/`StreamReader` API; each endpoint is one TCP
//! connection served by one broker thread.
//!
//! ## Framing
//!
//! Every message is one frame: a `u32` little-endian payload length, then
//! the payload, whose first byte is the opcode. Payload fields use the
//! [`sb_data::wire`] primitives (length-prefixed strings, LE integers).
//! Under protocol **v1**, steps travel as [`sb_data::wire::encode_chunk`]
//! frames — the container codec, reused on the wire, so payload bytes are
//! identical to what the file components persist. Under protocol **v2**
//! (the default, negotiated in the hello) each connection interns variable
//! metadata: a numbered definition travels once and chunks reference it by
//! id ([`sb_data::wire::encode_chunk_interned`]), optionally with per-chunk
//! LZ compression ([`TcpOptions::with_compression`]). The v2 step frames:
//!
//! ```text
//! W_STEP     := 0x11 | u64 step | u32 ndefs | def* | u32 nchunks | ichunk*
//! REPLY_STEP := 0x82 | u64 step | u32 ndefs | def* | u32 nchunks | ichunk*
//! ```
//!
//! The broker encodes each committed step **once** per codec and shares the
//! cached body across every v2 reader fetching that step; per-connection
//! definition high-water marks prepend exactly the definitions a given
//! reader still lacks. Each frame byte is charged once, to the hop it
//! crossed (writer→broker or broker→reader), by the broker sessions — see
//! the honest-accounting notes in [`crate::metrics`].
//!
//! ## Latency discipline
//!
//! *Writer-side batching*: `put` only appends to a local buffer; the whole
//! step goes out as one `W_STEP` frame at `end_step`, so an N-variable step
//! costs one round trip, not N. *Reader-side prefetch*: releasing step `s`
//! immediately pipelines the request for `s + 1`, so the broker can encode
//! and send the next step while the component is still computing.
//!
//! ## Failure semantics
//!
//! Connect and read deadlines are configurable via [`TcpOptions`] and
//! surface as the existing [`StreamError::Timeout`] /
//! [`StreamError::PeerGone`] taxonomy, so the workflow supervisor's
//! Restart/Degrade policies work unchanged across the process boundary. A
//! connection that drops without a clean `close`/`abandon` terminator (a
//! SIGKILLed component) is treated as a *noisy* disconnect: readers blocked
//! on steps that writer group can no longer commit fail promptly with
//! `PeerGone` instead of waiting out the hub timeout.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BufMut;
use parking_lot::Mutex;
use sb_data::wire::{
    decode_chunk, decode_chunk_interned, encode_chunk, encode_chunk_interned, get_str, Compression,
    MetaDefs, MetaInternTable,
};
use sb_data::Chunk;

use crate::error::{StreamError, StreamResult};
use crate::hub::StreamHub;
use crate::metrics::{Counters, StreamMetrics};
use crate::stream::WriterOptions;
use crate::trace::{EventKind, TraceSite, Tracer};
use crate::transport::{
    ReaderConnection, ReaderEndpoint, StepContents, Transport, VarSlot, WriterConnection,
    WriterEndpoint,
};

// Client → broker.
const HELLO_WRITER: u8 = 0x01;
const HELLO_READER: u8 = 0x02;
const HELLO_CONTROL: u8 = 0x03;
const W_BEGIN: u8 = 0x10;
const W_STEP: u8 = 0x11;
const W_CLOSE: u8 = 0x12;
const W_ABANDON: u8 = 0x13;
const R_BEGIN: u8 = 0x20;
const R_RELEASE: u8 = 0x21;
const C_POISON: u8 = 0x30;
const C_FORCE_EOS: u8 = 0x31;
const C_DETACH: u8 = 0x32;
const C_RESTART: u8 = 0x33;
const C_SET_TIMEOUT: u8 = 0x34;
const C_METRICS: u8 = 0x35;

// Broker → client.
const REPLY_OK: u8 = 0x80;
const REPLY_STARTED: u8 = 0x81;
const REPLY_STEP: u8 = 0x82;
const REPLY_EOS: u8 = 0x83;
const REPLY_ERR_TIMEOUT: u8 = 0x84;
const REPLY_ERR_PEER_GONE: u8 = 0x85;
const REPLY_METRICS: u8 = 0x86;

/// Upper bound on a single frame; a corrupt length prefix fails cleanly
/// instead of attempting a giant allocation.
pub(crate) const MAX_FRAME: u32 = 1 << 30;

/// Cached encoded steps the broker keeps per stream before dropping the
/// oldest. Eviction normally happens when every attached v2 reader has
/// released the step; the cap only bounds stragglers (a premature eviction
/// costs a re-encode, never correctness).
const RELAY_CACHE_CAP: usize = 64;

/// Frame-protocol revisions the hello negotiates.
///
/// v1 re-sends full [`sb_data::VariableMeta`] with every chunk of every
/// step; v2 interns metadata per connection (a numbered definition travels
/// once, chunks reference it by id) and may compress chunk payloads. The
/// hello carries the client's preferred revision and the broker echoes what
/// it accepted in `REPLY_STARTED`; a hello with no protocol trailer is a
/// v1 client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum WireProtocol {
    /// Self-describing chunk frames ([`sb_data::wire::encode_chunk`]).
    V1,
    /// Interned metadata + optional per-chunk compression
    /// ([`sb_data::wire::encode_chunk_interned`]).
    #[default]
    V2,
}

impl WireProtocol {
    /// The one-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            WireProtocol::V1 => 1,
            WireProtocol::V2 => 2,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> Result<WireProtocol, String> {
        match tag {
            1 => Ok(WireProtocol::V1),
            2 => Ok(WireProtocol::V2),
            t => Err(format!("unknown wire protocol {t}")),
        }
    }

    /// The name used in flags, benchmarks, and reports.
    pub fn name(self) -> &'static str {
        match self {
            WireProtocol::V1 => "v1",
            WireProtocol::V2 => "v2",
        }
    }
}

/// Connect/read deadlines of the TCP backend.
///
/// Marked `#[non_exhaustive]`; construct via [`TcpOptions::default`] and
/// refine with the `with_*` setters.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpOptions {
    /// Total budget for dialing the broker, retried while it comes up —
    /// launch-order independence across processes. Expiry surfaces as
    /// [`StreamError::Timeout`] from the first blocking call.
    pub connect_timeout: Duration,
    /// Slack added to the hub wait timeout for the socket read deadline:
    /// the broker enforces the hub timeout where the blocking happens, so
    /// the client only needs the margin to cover the wire.
    pub read_grace: Duration,
    /// Sets `TCP_NODELAY` on every connection (steps are latency-bound).
    pub nodelay: bool,
    /// Frame-protocol revision offered in the hello. Defaults to
    /// [`WireProtocol::V2`]; the broker accepts either, so this is only a
    /// compatibility/ablation knob.
    pub protocol: WireProtocol,
    /// Per-chunk payload compression requested for v2 connections
    /// (ignored under v1, which has no codec field). Defaults to
    /// [`Compression::None`].
    pub compression: Compression,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_timeout: Duration::from_secs(15),
            read_grace: Duration::from_secs(15),
            nodelay: true,
            protocol: WireProtocol::V2,
            compression: Compression::None,
        }
    }
}

impl TcpOptions {
    /// Sets the total connect budget (builder style).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> TcpOptions {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the read-deadline slack over the hub timeout (builder style).
    pub fn with_read_grace(mut self, grace: Duration) -> TcpOptions {
        self.read_grace = grace;
        self
    }

    /// Enables or disables `TCP_NODELAY`.
    pub fn with_nodelay(mut self, nodelay: bool) -> TcpOptions {
        self.nodelay = nodelay;
        self
    }

    /// Selects the frame-protocol revision offered in the hello.
    pub fn with_protocol(mut self, protocol: WireProtocol) -> TcpOptions {
        self.protocol = protocol;
        self
    }

    /// Selects per-chunk payload compression (effective under v2 only).
    pub fn with_compression(mut self, compression: Compression) -> TcpOptions {
        self.compression = compression;
        self
    }
}

/// Parses and resolves a `tcp://host:port` URL.
pub fn parse_url(url: &str) -> io::Result<SocketAddr> {
    let rest = url.strip_prefix("tcp://").ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("transport URL {url:?} must start with tcp://"),
        )
    })?;
    rest.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("transport URL {url:?} resolved to no address"),
        )
    })
}

/// Appends a length-prefixed protocol string. Frame strings are normally
/// tiny (stream names, reasons, error text), but an oversized one must
/// surface as the typed error path, never a client-thread panic.
fn put_wire_str(buf: &mut Vec<u8>, s: &str) -> Result<(), String> {
    check_wire_str_len(s.len())?;
    sb_data::wire::put_str(buf, s).map_err(|e| e.to_string())
}

/// The length gate of [`put_wire_str`], split out so the >4 GiB boundary
/// is testable by injecting a length instead of allocating one.
fn check_wire_str_len(len: usize) -> Result<(), String> {
    if u32::try_from(len).is_err() {
        return Err(format!(
            "protocol string of {len} bytes exceeds the u32 wire length field"
        ));
    }
    Ok(())
}

// ---- framing -------------------------------------------------------------

/// One framed, bidirectional byte channel: the seam between the protocol
/// (hellos, steps, control verbs) and the fabric carrying it. The TCP
/// socket and the shared-memory ring both implement it, so every client
/// and broker-session codepath above this line is fabric-agnostic.
pub(crate) trait FrameIo: Send {
    /// Sends one `u32`-length-prefixed frame, returning the bytes that
    /// crossed the fabric (header plus payload).
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<usize>;

    /// Receives one frame payload.
    fn recv_frame(&mut self) -> io::Result<Vec<u8>>;

    /// Sets the deadline applied to subsequent [`FrameIo::recv_frame`]
    /// calls; expiry must surface as `WouldBlock` or `TimedOut`.
    fn set_recv_deadline(&mut self, deadline: Option<Duration>);
}

fn send_frame(sock: &mut TcpStream, payload: &[u8]) -> io::Result<usize> {
    sock.write_all(&(payload.len() as u32).to_le_bytes())?;
    sock.write_all(payload)?;
    Ok(4 + payload.len())
}

fn recv_frame(sock: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    sock.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    // Grow as bytes arrive rather than trusting the header with one
    // allocation (same discipline as the container reader).
    let mut payload = Vec::new();
    sock.take(len as u64).read_to_end(&mut payload)?;
    if payload.len() < len as usize {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        ));
    }
    Ok(payload)
}

impl FrameIo for TcpStream {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<usize> {
        send_frame(self, payload)
    }

    fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        recv_frame(self)
    }

    fn set_recv_deadline(&mut self, deadline: Option<Duration>) {
        let _ = self.set_read_timeout(deadline);
    }
}

// ---- payload parsing helpers ---------------------------------------------

/// A bounds-checked little-endian cursor over one frame payload; every
/// failure is a `String` detail the caller wraps into a typed error.
struct Cur<'a>(&'a [u8]);

impl<'a> Cur<'a> {
    fn u8(&mut self, what: &str) -> Result<u8, String> {
        let (&b, rest) = self
            .0
            .split_first()
            .ok_or_else(|| format!("truncated {what}"))?;
        self.0 = rest;
        Ok(b)
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        if self.0.len() < 4 {
            return Err(format!("truncated {what}"));
        }
        let (head, rest) = self.0.split_at(4);
        self.0 = rest;
        Ok(u32::from_le_bytes(head.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        if self.0.len() < 8 {
            return Err(format!("truncated {what}"));
        }
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        Ok(u64::from_le_bytes(head.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        get_str(&mut self.0).map_err(|e| format!("bad {what}: {e}"))
    }

    fn chunk(&mut self) -> Result<Chunk, String> {
        decode_chunk(&mut self.0).map_err(|e| format!("bad chunk frame: {e}"))
    }
}

/// Parses the optional trailing `[u8 proto][u8 comp]` negotiation bytes a
/// hello or `REPLY_STARTED` may carry. Their absence means the peer
/// predates protocol v2 and speaks v1 uncompressed.
fn negotiated(cur: &mut Cur<'_>) -> Result<(WireProtocol, Compression), String> {
    if cur.0.is_empty() {
        return Ok((WireProtocol::V1, Compression::None));
    }
    let proto = WireProtocol::from_tag(cur.u8("protocol tag")?)?;
    let comp = Compression::from_tag(cur.u8("compression tag")?).map_err(|e| e.to_string())?;
    // v1 frames have nowhere to record a codec; the pair degrades together.
    if proto == WireProtocol::V1 {
        return Ok((proto, Compression::None));
    }
    Ok((proto, comp))
}

fn proto_gone(stream: &str, detail: impl std::fmt::Display) -> StreamError {
    StreamError::PeerGone {
        stream: stream.to_string(),
        reason: format!("transport protocol error: {detail}"),
    }
}

fn encode_err(buf: &mut Vec<u8>, err: &StreamError) {
    let start = buf.len();
    let framed = (|| -> Result<(), String> {
        match err {
            StreamError::Timeout {
                stream,
                waiting_for,
                timeout,
                detail,
            } => {
                buf.put_u8(REPLY_ERR_TIMEOUT);
                put_wire_str(buf, stream)?;
                put_wire_str(buf, waiting_for)?;
                buf.put_u64_le(timeout.as_micros() as u64);
                put_wire_str(buf, detail)?;
            }
            StreamError::PeerGone { stream, reason } => {
                buf.put_u8(REPLY_ERR_PEER_GONE);
                put_wire_str(buf, stream)?;
                put_wire_str(buf, reason)?;
            }
        }
        Ok(())
    })();
    if framed.is_err() {
        // An error whose strings cannot fit the frame must still reach the
        // peer as *something* decodable; degrade to a constant PeerGone.
        buf.truncate(start);
        const DETAIL: &str = "unframeable error reply";
        buf.put_u8(REPLY_ERR_PEER_GONE);
        buf.put_u32_le(0); // empty stream name
        buf.put_u32_le(DETAIL.len() as u32);
        buf.extend_from_slice(DETAIL.as_bytes());
    }
}

fn decode_err(op: u8, cur: &mut Cur<'_>) -> Result<StreamError, String> {
    match op {
        REPLY_ERR_TIMEOUT => Ok(StreamError::Timeout {
            stream: cur.string("error stream")?,
            waiting_for: cur.string("error cause")?,
            timeout: Duration::from_micros(cur.u64("error timeout")?),
            detail: cur.string("error detail")?,
        }),
        REPLY_ERR_PEER_GONE => Ok(StreamError::PeerGone {
            stream: cur.string("error stream")?,
            reason: cur.string("error reason")?,
        }),
        other => Err(format!("unexpected reply opcode {other:#04x}")),
    }
}

fn encode_metrics(buf: &mut Vec<u8>, m: &StreamMetrics) -> Result<(), String> {
    put_wire_str(buf, &m.stream)?;
    buf.put_u64_le(m.bytes_written);
    buf.put_u64_le(m.bytes_read);
    buf.put_u64_le(m.steps_committed);
    buf.put_u64_le(m.steps_consumed);
    buf.put_u64_le(m.writer_wait.as_nanos() as u64);
    buf.put_u64_le(m.reader_wait.as_nanos() as u64);
    buf.put_u64_le(m.bytes_copied);
    buf.put_u64_le(m.copies_elided);
    buf.put_u64_le(m.zero_fills_elided);
    buf.put_u64_le(m.wire_writer_bytes);
    buf.put_u64_le(m.wire_reader_bytes);
    buf.put_u64_le(m.wire_shm_bytes);
    buf.put_u64_le(m.wire_uncompressed_bytes);
    buf.put_u64_le(m.wire_compressed_bytes);
    buf.put_u64_le(m.bytes_on_wire);
    Ok(())
}

fn decode_metrics(cur: &mut Cur<'_>) -> Result<StreamMetrics, String> {
    Ok(StreamMetrics {
        stream: cur.string("metrics stream")?,
        bytes_written: cur.u64("bytes_written")?,
        bytes_read: cur.u64("bytes_read")?,
        steps_committed: cur.u64("steps_committed")?,
        steps_consumed: cur.u64("steps_consumed")?,
        writer_wait: Duration::from_nanos(cur.u64("writer_wait")?),
        reader_wait: Duration::from_nanos(cur.u64("reader_wait")?),
        bytes_copied: cur.u64("bytes_copied")?,
        copies_elided: cur.u64("copies_elided")?,
        zero_fills_elided: cur.u64("zero_fills_elided")?,
        wire_writer_bytes: cur.u64("wire_writer_bytes")?,
        wire_reader_bytes: cur.u64("wire_reader_bytes")?,
        wire_shm_bytes: cur.u64("wire_shm_bytes")?,
        wire_uncompressed_bytes: cur.u64("wire_uncompressed_bytes")?,
        wire_compressed_bytes: cur.u64("wire_compressed_bytes")?,
        bytes_on_wire: cur.u64("bytes_on_wire")?,
    })
}

// ---- client side ---------------------------------------------------------

/// One endpoint's connection to the broker, with typed send/receive.
struct ClientConn {
    io: Box<dyn FrameIo>,
    stream_name: String,
    peer: String,
    wait_timeout_micros: Arc<AtomicU64>,
    read_grace: Duration,
}

impl ClientConn {
    fn send(&mut self, payload: &[u8]) -> StreamResult<()> {
        self.io
            .send_frame(payload)
            .map(|_| ())
            .map_err(|e| StreamError::PeerGone {
                stream: self.stream_name.clone(),
                reason: format!("broker connection lost ({e})"),
            })
    }

    /// Receives one reply frame. The broker enforces the hub timeout where
    /// the blocking happens; the fabric deadline only adds wire slack, and
    /// its expiry surfaces as the same [`StreamError::Timeout`].
    fn recv(&mut self, waiting_for: &str) -> StreamResult<Vec<u8>> {
        let base = Duration::from_micros(self.wait_timeout_micros.load(Ordering::Relaxed));
        let deadline = base + self.read_grace;
        self.io.set_recv_deadline(Some(deadline));
        self.io.recv_frame().map_err(|e| match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => StreamError::Timeout {
                stream: self.stream_name.clone(),
                waiting_for: waiting_for.to_string(),
                timeout: deadline,
                detail: format!("no reply from broker at {}", self.peer),
            },
            _ => StreamError::PeerGone {
                stream: self.stream_name.clone(),
                reason: format!("broker connection lost ({e})"),
            },
        })
    }

    /// Receives a reply and requires a bare `OK`.
    fn expect_ok(&mut self, waiting_for: &str) -> StreamResult<()> {
        let payload = self.recv(waiting_for)?;
        let mut cur = Cur(&payload);
        match cur.u8("reply opcode") {
            Ok(REPLY_OK) => Ok(()),
            Ok(op) => {
                Err(decode_err(op, &mut cur).unwrap_or_else(|d| proto_gone(&self.stream_name, d)))
            }
            Err(d) => Err(proto_gone(&self.stream_name, d)),
        }
    }
}

fn dial(
    addr: SocketAddr,
    options: &TcpOptions,
    stream_name: &str,
) -> Result<TcpStream, StreamError> {
    let deadline = Instant::now() + options.connect_timeout;
    let mut last_err: Option<io::Error> = None;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(StreamError::Timeout {
                stream: stream_name.to_string(),
                waiting_for: "broker connection".to_string(),
                timeout: options.connect_timeout,
                detail: format!(
                    "{addr}: {}",
                    last_err
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "connect budget exhausted".to_string())
                ),
            });
        }
        match TcpStream::connect_timeout(&addr, remaining.min(Duration::from_secs(2))) {
            Ok(sock) => {
                let _ = sock.set_nodelay(options.nodelay);
                return Ok(sock);
            }
            Err(e) => {
                last_err = Some(e);
                // The broker may still be coming up (launch-order
                // independence); retry until the budget runs out.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Dials one fabric connection per endpoint — the client-side seam that
/// lets [`TcpTransport`] drive any [`FrameIo`] fabric. The shared-memory
/// backend reuses the whole client protocol by substituting its dialer.
pub(crate) trait Dialer: Send + Sync {
    /// Backend name reported by [`Transport::backend`].
    fn backend(&self) -> &'static str;

    /// Opens one framed connection for `stream_name`'s endpoint.
    fn dial(&self, stream_name: &str) -> Result<Box<dyn FrameIo>, StreamError>;

    /// Peer identity for error detail text.
    fn peer(&self) -> String;
}

struct TcpDialer {
    addr: SocketAddr,
    options: TcpOptions,
}

impl Dialer for TcpDialer {
    fn backend(&self) -> &'static str {
        "tcp"
    }

    fn dial(&self, stream_name: &str) -> Result<Box<dyn FrameIo>, StreamError> {
        dial(self.addr, &self.options, stream_name).map(|sock| Box::new(sock) as Box<dyn FrameIo>)
    }

    fn peer(&self) -> String {
        self.addr.to_string()
    }
}

/// The client-side [`Transport`]: every endpoint is one framed connection
/// to the broker, dialed through a fabric-specific [`Dialer`] (a TCP
/// socket, or the shared-memory ring of [`crate::shm`]).
pub struct TcpTransport {
    dialer: Box<dyn Dialer>,
    url: String,
    options: TcpOptions,
    wait_timeout_micros: Arc<AtomicU64>,
    tracer: Arc<Tracer>,
    /// Local read-side counter blocks per stream (the MxN assembly in this
    /// process charges here; merged into broker snapshots on `all_metrics`).
    counters: Mutex<HashMap<String, Arc<Counters>>>,
    /// Lazily dialed control connection for the supervision verbs.
    control: Mutex<Option<ClientConn>>,
}

impl TcpTransport {
    /// Resolves `url` (`tcp://host:port`). Sockets are dialed when
    /// endpoints open, so the broker may come up later.
    pub fn connect(
        url: &str,
        options: TcpOptions,
        wait_timeout_micros: Arc<AtomicU64>,
        tracer: Arc<Tracer>,
    ) -> io::Result<TcpTransport> {
        let addr = parse_url(url)?;
        Ok(TcpTransport::with_dialer(
            url.to_string(),
            Box::new(TcpDialer { addr, options }),
            options,
            wait_timeout_micros,
            tracer,
        ))
    }

    /// Assembles the client protocol over an arbitrary fabric dialer.
    pub(crate) fn with_dialer(
        url: String,
        dialer: Box<dyn Dialer>,
        options: TcpOptions,
        wait_timeout_micros: Arc<AtomicU64>,
        tracer: Arc<Tracer>,
    ) -> TcpTransport {
        TcpTransport {
            dialer,
            url,
            options,
            wait_timeout_micros,
            tracer,
            counters: Mutex::new(HashMap::new()),
            control: Mutex::new(None),
        }
    }

    /// The URL this transport dials.
    pub fn url(&self) -> &str {
        &self.url
    }

    fn stream_counters(&self, name: &str) -> Arc<Counters> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counters::default())),
        )
    }

    fn client_conn(&self, stream_name: &str) -> Result<ClientConn, StreamError> {
        let io = self.dialer.dial(stream_name)?;
        Ok(ClientConn {
            io,
            stream_name: stream_name.to_string(),
            peer: self.dialer.peer(),
            wait_timeout_micros: Arc::clone(&self.wait_timeout_micros),
            read_grace: self.options.read_grace,
        })
    }

    /// Runs one control-channel exchange, redialing if the cached control
    /// connection is gone; the connection is dropped on any error so the
    /// next verb starts clean.
    fn control_exchange(&self, request: &[u8], waiting_for: &str) -> StreamResult<Vec<u8>> {
        let mut guard = self.control.lock();
        if guard.is_none() {
            let mut conn = self.client_conn("<control>")?;
            conn.send(&[HELLO_CONTROL])?;
            conn.expect_ok("control handshake")?;
            *guard = Some(conn);
        }
        let conn = guard.as_mut().expect("control connection just installed");
        let result = conn.send(request).and_then(|()| conn.recv(waiting_for));
        if result.is_err() {
            *guard = None;
        }
        result
    }

    fn control_ok(&self, request: &[u8], waiting_for: &str) -> StreamResult<()> {
        let payload = self.control_exchange(request, waiting_for)?;
        let mut cur = Cur(&payload);
        match cur.u8("reply opcode") {
            Ok(REPLY_OK) => Ok(()),
            Ok(op) => Err(decode_err(op, &mut cur).unwrap_or_else(|d| proto_gone("<control>", d))),
            Err(d) => Err(proto_gone("<control>", d)),
        }
    }

    fn broker_metrics(&self) -> StreamResult<Vec<StreamMetrics>> {
        let payload = self.control_exchange(&[C_METRICS], "metrics snapshot")?;
        let mut cur = Cur(&payload);
        let op = cur
            .u8("reply opcode")
            .map_err(|d| proto_gone("<control>", d))?;
        if op != REPLY_METRICS {
            return Err(decode_err(op, &mut cur).unwrap_or_else(|d| proto_gone("<control>", d)));
        }
        let n = cur
            .u32("metrics count")
            .map_err(|d| proto_gone("<control>", d))?;
        let mut out = Vec::with_capacity((n as usize).min(1024));
        for _ in 0..n {
            out.push(decode_metrics(&mut cur).map_err(|d| proto_gone("<control>", d))?);
        }
        Ok(out)
    }
}

struct TcpWriter {
    io: Result<ClientConn, StreamError>,
    stream: String,
    counters: Arc<Counters>,
    /// Protocol revision the broker accepted for this connection.
    proto: WireProtocol,
    /// Payload codec the broker accepted (always `None` under v1).
    compression: Compression,
    /// This connection's interning table (v2): definitions below
    /// `defs_sent` have already been framed.
    table: MetaInternTable,
    defs_sent: u32,
    /// Encoded definitions pending for the open step (v2).
    defs: Vec<u8>,
    ndefs: u32,
    /// Chunks of the open step, encoded as they are put; flushed as one
    /// `W_STEP` frame at `end_step` (writer-side batching).
    batch: Vec<u8>,
    nchunks: u32,
    /// Payload bytes of the open step before/after the codec.
    step_raw: u64,
    step_wire: u64,
    /// `put` is infallible by contract; an encode failure is stashed here
    /// and surfaces from `end_step`, where the run loop handles errors.
    encode_failure: Option<String>,
    tracer: Arc<Tracer>,
    trace_id: u32,
    rank: usize,
    terminated: bool,
}

impl TcpWriter {
    fn conn(&mut self) -> StreamResult<&mut ClientConn> {
        match &mut self.io {
            Ok(conn) => Ok(conn),
            Err(e) => Err(e.clone()),
        }
    }

    fn put_interned(&mut self, chunk: &Chunk) -> sb_data::DataResult<()> {
        let id = self.table.intern(&chunk.meta)?;
        if self.table.len() > self.defs_sent {
            self.ndefs += self.table.append_defs_since(self.defs_sent, &mut self.defs);
            self.defs_sent = self.table.len();
        }
        let enc = encode_chunk_interned(&mut self.batch, chunk, id, self.compression)?;
        self.step_raw += enc.raw_payload as u64;
        self.step_wire += enc.wire_payload as u64;
        Ok(())
    }
}

impl WriterEndpoint for TcpWriter {
    fn begin_step(&mut self, step: u64) -> StreamResult<()> {
        let counters = Arc::clone(&self.counters);
        let conn = self.conn()?;
        let mut req = Vec::with_capacity(9);
        req.put_u8(W_BEGIN);
        req.put_u64_le(step);
        counters.add_wire_writer(4 + req.len());
        conn.send(&req)?;
        conn.expect_ok("buffer space")
    }

    fn put(&mut self, _step: u64, chunk: Chunk) {
        if self.encode_failure.is_some() {
            return;
        }
        let result = match self.proto {
            WireProtocol::V1 => encode_chunk(&mut self.batch, &chunk),
            WireProtocol::V2 => self.put_interned(&chunk),
        };
        match result {
            Ok(()) => self.nchunks += 1,
            Err(e) => self.encode_failure = Some(e.to_string()),
        }
    }

    fn end_step(&mut self, step: u64) -> StreamResult<()> {
        if let Some(detail) = self.encode_failure.take() {
            // Drop the poisoned batch but keep any pending defs: their ids
            // are already marked sent in `defs_sent`, so they must still
            // ride along with the next step that does go out.
            self.batch.clear();
            self.nchunks = 0;
            self.step_raw = 0;
            self.step_wire = 0;
            return Err(StreamError::PeerGone {
                stream: self.stream.clone(),
                reason: format!("unencodable chunk: {detail}"),
            });
        }
        let batch = std::mem::take(&mut self.batch);
        let nchunks = std::mem::take(&mut self.nchunks);
        let defs = std::mem::take(&mut self.defs);
        let ndefs = std::mem::take(&mut self.ndefs);
        let (step_raw, step_wire) = (self.step_raw, self.step_wire);
        self.step_raw = 0;
        self.step_wire = 0;
        let counters = Arc::clone(&self.counters);
        let mut req = Vec::with_capacity(17 + defs.len() + batch.len());
        req.put_u8(W_STEP);
        req.put_u64_le(step);
        if self.proto == WireProtocol::V2 {
            req.put_u32_le(ndefs);
            req.extend_from_slice(&defs);
            // The writer-hop payload is encoded here, so this side charges
            // the compression ledger (the broker charges the reader hop).
            counters.add_compression(step_raw as usize, step_wire as usize);
            if step_wire < step_raw {
                self.tracer.instant(
                    EventKind::Compressed,
                    TraceSite::stream(self.trace_id, self.rank, step),
                    step_raw - step_wire,
                );
            }
        }
        req.put_u32_le(nchunks);
        req.extend_from_slice(&batch);
        counters.add_wire_writer(4 + req.len());
        let conn = self.conn()?;
        conn.send(&req)?;
        conn.expect_ok("step commit")
    }

    fn close(&mut self) {
        self.terminated = true;
        if let Ok(conn) = &mut self.io {
            // Wait for the ack so the close is durable broker-side before
            // this process may exit.
            let _ = conn.send(&[W_CLOSE]);
            let _ = conn.expect_ok("close acknowledgement");
        }
    }

    fn abandon(&mut self) {
        self.terminated = true;
        if let Ok(conn) = &mut self.io {
            // Explicit *silent* terminator: the broker must not treat the
            // imminent connection drop as a noisy disconnect — the
            // supervisor owns the failure.
            let _ = conn.send(&[W_ABANDON, 0]);
        }
    }

    fn disconnect(&mut self) {
        self.terminated = true;
        if let Ok(conn) = &mut self.io {
            let _ = conn.send(&[W_ABANDON, 1]);
        }
    }
}

struct TcpReader {
    io: Result<ClientConn, StreamError>,
    counters: Arc<Counters>,
    /// Protocol revision the broker accepted for this connection.
    proto: WireProtocol,
    /// Definitions applied so far (v2 interning, per connection).
    defs: MetaDefs,
    /// Step a `R_BEGIN` is in flight for (reader-side prefetch).
    pending: Option<u64>,
    eos: bool,
    fetched: u64,
}

impl ReaderEndpoint for TcpReader {
    fn fetch_step(&mut self, step: u64) -> StreamResult<Option<StepContents>> {
        if self.eos {
            return Ok(None);
        }
        let counters = Arc::clone(&self.counters);
        let conn = match &mut self.io {
            Ok(conn) => conn,
            Err(e) => return Err(e.clone()),
        };
        if self.pending != Some(step) {
            let mut req = Vec::with_capacity(9);
            req.put_u8(R_BEGIN);
            req.put_u64_le(step);
            counters.add_wire_reader(4 + req.len());
            conn.send(&req)?;
            self.pending = Some(step);
        }
        let payload = conn.recv("a committed step")?;
        counters.add_wire_reader(4 + payload.len());
        self.pending = None;
        let name = conn.stream_name.clone();
        let mut cur = Cur(&payload);
        match cur.u8("reply opcode").map_err(|d| proto_gone(&name, d))? {
            REPLY_STEP => {
                let got = cur.u64("step id").map_err(|d| proto_gone(&name, d))?;
                if got != step {
                    return Err(proto_gone(
                        &name,
                        format!("broker sent step {got}, expected {step}"),
                    ));
                }
                if self.proto == WireProtocol::V2 {
                    let ndefs = cur.u32("def count").map_err(|d| proto_gone(&name, d))?;
                    for _ in 0..ndefs {
                        self.defs
                            .decode_def(&mut cur.0)
                            .map_err(|e| proto_gone(&name, format!("bad meta def: {e}")))?;
                    }
                }
                let nchunks = cur.u32("chunk count").map_err(|d| proto_gone(&name, d))?;
                let mut vars: BTreeMap<String, VarSlot> = BTreeMap::new();
                for _ in 0..nchunks {
                    let chunk = match self.proto {
                        WireProtocol::V1 => cur.chunk().map_err(|d| proto_gone(&name, d))?,
                        WireProtocol::V2 => decode_chunk_interned(&mut cur.0, &self.defs)
                            .map_err(|e| proto_gone(&name, format!("bad chunk frame: {e}")))?,
                    };
                    vars.entry(chunk.meta.name.clone())
                        .or_insert_with(|| VarSlot {
                            meta: chunk.meta.clone(),
                            chunks: Vec::new(),
                        })
                        .chunks
                        .push(chunk);
                }
                self.fetched += 1;
                Ok(Some(Arc::new(vars)))
            }
            REPLY_EOS => {
                self.eos = true;
                Ok(None)
            }
            op => Err(decode_err(op, &mut cur).unwrap_or_else(|d| proto_gone(&name, d))),
        }
    }

    fn release_step(&mut self, step: u64) {
        if self.eos {
            return;
        }
        let counters = Arc::clone(&self.counters);
        if let Ok(conn) = &mut self.io {
            let mut req = Vec::with_capacity(9);
            req.put_u8(R_RELEASE);
            req.put_u64_le(step);
            counters.add_wire_reader(4 + req.len());
            let _ = conn.send(&req);
            // Prefetch: pipeline the request for the next step so the
            // broker can push it while this rank computes.
            let mut next = Vec::with_capacity(9);
            next.put_u8(R_BEGIN);
            next.put_u64_le(step + 1);
            counters.add_wire_reader(4 + next.len());
            if conn.send(&next).is_ok() {
                self.pending = Some(step + 1);
            }
        }
    }

    fn committed_steps(&self) -> u64 {
        // The broker holds the authoritative counter; locally we know how
        // many steps this rank has already received.
        self.fetched
    }
}

impl Transport for TcpTransport {
    fn backend(&self) -> &'static str {
        self.dialer.backend()
    }

    fn open_writer(
        &self,
        name: &str,
        rank: usize,
        nranks: usize,
        options: WriterOptions,
    ) -> WriterConnection {
        let trace_id = self.tracer.intern(name);
        let counters = self.stream_counters(name);
        let opened = (|| -> StreamResult<(ClientConn, u64, WireProtocol, Compression)> {
            let mut conn = self.client_conn(name)?;
            let mut hello = Vec::with_capacity(64);
            hello.put_u8(HELLO_WRITER);
            put_wire_str(&mut hello, name).map_err(|d| proto_gone(name, d))?;
            hello.put_u32_le(rank as u32);
            hello.put_u32_le(nranks as u32);
            hello.put_u32_le(options.queue_capacity as u32);
            hello.put_u8(options.rendezvous as u8);
            hello.put_u32_le(options.expected_reader_groups as u32);
            hello.put_u8(self.options.protocol.tag());
            hello.put_u8(self.options.compression.tag());
            conn.send(&hello)?;
            let payload = conn.recv("writer registration")?;
            let mut cur = Cur(&payload);
            match cur.u8("reply opcode").map_err(|d| proto_gone(name, d))? {
                REPLY_STARTED => {
                    let start = cur.u64("start step").map_err(|d| proto_gone(name, d))?;
                    let (proto, comp) = negotiated(&mut cur).map_err(|d| proto_gone(name, d))?;
                    Ok((conn, start, proto, comp))
                }
                op => Err(decode_err(op, &mut cur).unwrap_or_else(|d| proto_gone(name, d))),
            }
        })();
        let (io, start_step, proto, compression) = match opened {
            Ok((conn, start, proto, comp)) => (Ok(conn), start, proto, comp),
            // Opens stay infallible: the failure is stored and surfaces
            // from the first begin_step, where the run loop handles it.
            Err(e) => (Err(e), 0, WireProtocol::V1, Compression::None),
        };
        WriterConnection::new(
            Box::new(TcpWriter {
                io,
                stream: name.to_string(),
                counters,
                proto,
                compression,
                table: MetaInternTable::default(),
                defs_sent: 0,
                defs: Vec::new(),
                ndefs: 0,
                batch: Vec::new(),
                nchunks: 0,
                step_raw: 0,
                step_wire: 0,
                encode_failure: None,
                tracer: Arc::clone(&self.tracer),
                trace_id,
                rank,
                terminated: false,
            }),
            start_step,
            Arc::clone(&self.tracer),
            trace_id,
        )
    }

    fn open_reader(&self, name: &str, group: &str, rank: usize, nranks: usize) -> ReaderConnection {
        let trace_id = self.tracer.intern(name);
        let counters = self.stream_counters(name);
        let opened = (|| -> StreamResult<(ClientConn, u64, WireProtocol)> {
            let mut conn = self.client_conn(name)?;
            let mut hello = Vec::with_capacity(64);
            hello.put_u8(HELLO_READER);
            put_wire_str(&mut hello, name).map_err(|d| proto_gone(name, d))?;
            put_wire_str(&mut hello, group).map_err(|d| proto_gone(name, d))?;
            hello.put_u32_le(rank as u32);
            hello.put_u32_le(nranks as u32);
            hello.put_u8(self.options.protocol.tag());
            hello.put_u8(self.options.compression.tag());
            conn.send(&hello)?;
            let payload = conn.recv("reader registration")?;
            let mut cur = Cur(&payload);
            match cur.u8("reply opcode").map_err(|d| proto_gone(name, d))? {
                REPLY_STARTED => {
                    let first = cur.u64("first step").map_err(|d| proto_gone(name, d))?;
                    let (proto, _comp) = negotiated(&mut cur).map_err(|d| proto_gone(name, d))?;
                    Ok((conn, first, proto))
                }
                op => Err(decode_err(op, &mut cur).unwrap_or_else(|d| proto_gone(name, d))),
            }
        })();
        let (io, first_step, proto, pending) = match opened {
            Ok((mut conn, first, proto)) => {
                // Prefetch the first step right away.
                let mut req = Vec::with_capacity(9);
                req.put_u8(R_BEGIN);
                req.put_u64_le(first);
                counters.add_wire_reader(4 + req.len());
                let pending = conn.send(&req).is_ok().then_some(first);
                (Ok(conn), first, proto, pending)
            }
            Err(e) => (Err(e), 0, WireProtocol::V1, None),
        };
        let mut rc = ReaderConnection::new(
            Box::new(TcpReader {
                io,
                counters: Arc::clone(&counters),
                proto,
                defs: MetaDefs::default(),
                pending,
                eos: false,
                fetched: 0,
            }),
            first_step,
            Arc::clone(&self.tracer),
            trace_id,
        );
        rc.counters = counters;
        rc
    }

    fn stream_names(&self) -> Vec<String> {
        match self.broker_metrics() {
            Ok(all) => all.into_iter().map(|m| m.stream).collect(),
            Err(_) => {
                let mut names: Vec<String> = self.counters.lock().keys().cloned().collect();
                names.sort();
                names
            }
        }
    }

    fn metrics(&self, name: &str) -> Option<StreamMetrics> {
        self.all_metrics().into_iter().find(|m| m.stream == name)
    }

    fn all_metrics(&self) -> Vec<StreamMetrics> {
        let local = self.counters.lock();
        match self.broker_metrics() {
            Ok(mut all) => {
                for m in &mut all {
                    if let Some(counters) = local.get(&m.stream) {
                        counters.merge_into(m);
                    }
                }
                all.sort_by(|a, b| a.stream.cmp(&b.stream));
                all
            }
            // Broker unreachable (teardown): serve what this process saw.
            Err(_) => {
                let mut out: Vec<StreamMetrics> =
                    local.iter().map(|(name, c)| c.snapshot(name)).collect();
                out.sort_by(|a, b| a.stream.cmp(&b.stream));
                out
            }
        }
    }

    fn poison_all(&self, reason: &str) {
        // The control verbs are fire-and-forget; an unframeable argument
        // degrades to a skipped verb, never a client panic.
        let _ = (|| -> StreamResult<()> {
            let mut req = vec![C_POISON];
            put_wire_str(&mut req, reason).map_err(|d| proto_gone("<control>", d))?;
            self.control_ok(&req, "poison acknowledgement")
        })();
    }

    fn force_end_of_stream(&self, name: &str) {
        let _ = (|| -> StreamResult<()> {
            let mut req = vec![C_FORCE_EOS];
            put_wire_str(&mut req, name).map_err(|d| proto_gone(name, d))?;
            self.control_ok(&req, "forced EOS acknowledgement")
        })();
    }

    fn detach_reader_group(&self, name: &str, group: &str) {
        let _ = (|| -> StreamResult<()> {
            let mut req = vec![C_DETACH];
            put_wire_str(&mut req, name).map_err(|d| proto_gone(name, d))?;
            put_wire_str(&mut req, group).map_err(|d| proto_gone(name, d))?;
            self.control_ok(&req, "detach acknowledgement")
        })();
    }

    fn prepare_restart(&self, inputs: &[(String, String)], outputs: &[String]) {
        let _ = (|| -> StreamResult<()> {
            let mut req = vec![C_RESTART];
            req.put_u32_le(inputs.len() as u32);
            for (stream, group) in inputs {
                put_wire_str(&mut req, stream).map_err(|d| proto_gone(stream, d))?;
                put_wire_str(&mut req, group).map_err(|d| proto_gone(stream, d))?;
            }
            req.put_u32_le(outputs.len() as u32);
            for stream in outputs {
                put_wire_str(&mut req, stream).map_err(|d| proto_gone(stream, d))?;
            }
            self.control_ok(&req, "restart preparation acknowledgement")
        })();
    }

    fn set_wait_timeout(&self, timeout: Duration) {
        let mut req = vec![C_SET_TIMEOUT];
        req.put_u64_le(timeout.as_micros() as u64);
        let _ = self.control_ok(&req, "timeout acknowledgement");
    }
}

// ---- broker side ---------------------------------------------------------

/// Decrements the active-connection gauge even if the session panics.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The broker: an accept loop serving a local in-proc [`StreamHub`] to
/// remote processes over framed TCP.
///
/// One thread per connection; frames on a connection are strictly ordered,
/// so each endpoint's protocol needs no further synchronization. All
/// queueing, backpressure, rendezvous, and supervision state lives in the
/// fronted hub — remote endpoints observe exactly the in-proc semantics.
pub struct TcpBroker {
    hub: Arc<StreamHub>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    seen: Arc<AtomicUsize>,
    accept: Option<JoinHandle<()>>,
}

impl TcpBroker {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) in front
    /// of a fresh in-proc hub.
    pub fn bind(addr: &str) -> io::Result<TcpBroker> {
        Self::serve(StreamHub::new(), addr)
    }

    /// Binds `addr` in front of an existing in-proc hub — the broker
    /// process can then also run components of its own on `hub` directly.
    pub fn serve(hub: Arc<StreamHub>, addr: &str) -> io::Result<TcpBroker> {
        if hub.backend() != "inproc" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a TcpBroker must front an in-proc hub, not another remote transport",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let seen = Arc::new(AtomicUsize::new(0));
        let relays = Arc::new(RelayTable::default());
        let accept = {
            let hub = Arc::clone(&hub);
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            let seen = Arc::clone(&seen);
            std::thread::Builder::new()
                .name("sb-tcp-broker".to_string())
                .spawn(move || {
                    for sock in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(sock) = sock else { continue };
                        let _ = sock.set_nodelay(true);
                        active.fetch_add(1, Ordering::SeqCst);
                        seen.fetch_add(1, Ordering::SeqCst);
                        let guard = ConnGuard(Arc::clone(&active));
                        let hub = Arc::clone(&hub);
                        let relays = Arc::clone(&relays);
                        let _ = std::thread::Builder::new()
                            .name("sb-tcp-session".to_string())
                            .spawn(move || {
                                let _guard = guard;
                                let mut sock = sock;
                                let _ = serve_session(&hub, &relays, &mut sock, false);
                            });
                    }
                })?
        };
        Ok(TcpBroker {
            hub,
            addr,
            shutdown,
            active,
            seen,
            accept: Some(accept),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `tcp://…` URL remote hubs connect to.
    pub fn url(&self) -> String {
        format!("tcp://{}", self.addr)
    }

    /// The fronted in-proc hub.
    pub fn hub(&self) -> &Arc<StreamHub> {
        &self.hub
    }

    /// Currently open client connections (endpoints plus control channels).
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Total connections ever accepted. Monotonic, so unlike
    /// [`active_connections`](Self::active_connections) a poll loop cannot
    /// miss a client that connected and left between two samples.
    pub fn connections_seen(&self) -> usize {
        self.seen.load(Ordering::SeqCst)
    }

    /// Stops accepting connections; existing sessions run until their
    /// clients hang up.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with one last connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for TcpBroker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn session_err(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// Sends one reply frame, returning the frame bytes that crossed the
/// fabric. The caller charges them to the hop-appropriate wire counter —
/// there is no counter parameter precisely so no call site can charge the
/// wrong hop silently.
fn reply(io: &mut dyn FrameIo, payload: &[u8]) -> io::Result<usize> {
    io.send_frame(payload)
}

fn reply_result(io: &mut dyn FrameIo, result: StreamResult<()>) -> io::Result<usize> {
    match result {
        Ok(()) => reply(io, &[REPLY_OK]),
        Err(e) => {
            let mut buf = Vec::with_capacity(128);
            encode_err(&mut buf, &e);
            reply(io, &buf)
        }
    }
}

/// Charges one session's frame bytes to its hop counter, attributing them
/// to the shared-memory fabric ledger too when the session runs over the
/// ring transport (see [`Counters::add_wire_shm`]).
#[derive(Clone, Copy)]
enum Hop {
    Writer,
    Reader,
}

struct HopLedger {
    counters: Arc<Counters>,
    hop: Hop,
    shm: bool,
}

impl HopLedger {
    fn charge(&self, bytes: usize) {
        match self.hop {
            Hop::Writer => self.counters.add_wire_writer(bytes),
            Hop::Reader => self.counters.add_wire_reader(bytes),
        }
        if self.shm {
            self.counters.add_wire_shm(bytes);
        }
    }
}

// ---- broker encode-once relay (protocol v2) ------------------------------

/// Broker-side per-stream relay state: the shared interning table plus the
/// encode-once step cache. One per broker, keyed by stream name.
#[derive(Default)]
pub(crate) struct RelayTable {
    streams: Mutex<HashMap<String, Arc<StreamRelay>>>,
}

impl RelayTable {
    fn stream(&self, name: &str) -> Arc<StreamRelay> {
        Arc::clone(self.streams.lock().entry(name.to_string()).or_default())
    }
}

/// One stream's encode-once state, shared by every v2 reader session.
#[derive(Default)]
struct StreamRelay {
    inner: Mutex<RelayInner>,
    /// v2 reader sessions currently attached; once each has released a
    /// cached step, the encoding is dropped.
    readers: AtomicUsize,
}

#[derive(Default)]
struct RelayInner {
    /// Definitions interned across the whole stream — ids are global to
    /// the broker side, and each session tracks its own high-water mark of
    /// ids already sent.
    table: MetaInternTable,
    /// Encoded step bodies, keyed by `(step, codec tag)` so v2 readers
    /// negotiating different codecs never share bytes they cannot decode.
    cache: BTreeMap<(u64, u8), CachedStep>,
}

struct CachedStep {
    nchunks: u32,
    body: Vec<u8>,
    releases: usize,
}

impl StreamRelay {
    /// Builds the `REPLY_STEP` frame for `step`, encoding chunk bodies at
    /// most once per `(step, codec)` across all attached readers — only the
    /// per-session definition catch-up prelude differs. The lock is held
    /// across the encode, which is what makes "at most once" exact.
    ///
    /// Returns the frame plus the payload bytes before/after the codec for
    /// a *fresh* encode, `(0, 0)` on a cache hit — so compression totals
    /// count each encode event exactly once.
    fn encode_step(
        &self,
        step: u64,
        comp: Compression,
        contents: &StepContents,
        defs_seen: &mut u32,
    ) -> sb_data::DataResult<(Vec<u8>, u64, u64)> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let key = (step, comp.tag());
        let mut fresh = (0u64, 0u64);
        if !inner.cache.contains_key(&key) {
            let mut body = Vec::with_capacity(256);
            let mut nchunks = 0u32;
            // BTreeMap order makes the encode deterministic, so every
            // reader of a step sees byte-identical chunk bodies.
            for slot in contents.values() {
                for chunk in &slot.chunks {
                    let id = inner.table.intern(&chunk.meta)?;
                    let enc = encode_chunk_interned(&mut body, chunk, id, comp)?;
                    fresh.0 += enc.raw_payload as u64;
                    fresh.1 += enc.wire_payload as u64;
                    nchunks += 1;
                }
            }
            inner.cache.insert(
                key,
                CachedStep {
                    nchunks,
                    body,
                    releases: 0,
                },
            );
            while inner.cache.len() > RELAY_CACHE_CAP {
                inner.cache.pop_first();
            }
        }
        let cached = inner.cache.get(&key).expect("step cached above");
        let mut defs = Vec::new();
        let ndefs = inner.table.append_defs_since(*defs_seen, &mut defs);
        *defs_seen = inner.table.len();
        let mut frame = Vec::with_capacity(17 + defs.len() + cached.body.len());
        frame.put_u8(REPLY_STEP);
        frame.put_u64_le(step);
        frame.put_u32_le(ndefs);
        frame.extend_from_slice(&defs);
        frame.put_u32_le(cached.nchunks);
        frame.extend_from_slice(&cached.body);
        Ok((frame, fresh.0, fresh.1))
    }

    /// Records one reader's release of `step`, dropping cached encodings
    /// once every attached v2 reader has released them. A reader that hangs
    /// up without releasing leaves the entry to the cache cap — a re-encode
    /// at worst, never a correctness problem.
    fn note_release(&self, step: u64) {
        let readers = self.readers.load(Ordering::SeqCst);
        let mut inner = self.inner.lock();
        let keys: Vec<(u64, u8)> = inner
            .cache
            .range((step, 0)..=(step, u8::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            let cached = inner.cache.get_mut(&key).expect("key listed above");
            cached.releases += 1;
            if cached.releases >= readers {
                inner.cache.remove(&key);
            }
        }
    }
}

/// Keeps the v2-reader gauge of a [`StreamRelay`] honest across panics.
struct ReaderCountGuard(Arc<StreamRelay>);

impl ReaderCountGuard {
    fn new(relay: Arc<StreamRelay>) -> ReaderCountGuard {
        relay.readers.fetch_add(1, Ordering::SeqCst);
        ReaderCountGuard(relay)
    }
}

impl Drop for ReaderCountGuard {
    fn drop(&mut self) {
        self.0.readers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serves one accepted connection over any [`FrameIo`] fabric. `shm` marks
/// sessions running over the shared-memory ring so their frame bytes are
/// also attributed to the shm fabric ledger.
pub(crate) fn serve_session(
    hub: &Arc<StreamHub>,
    relays: &Arc<RelayTable>,
    io: &mut dyn FrameIo,
    shm: bool,
) -> io::Result<()> {
    let hello = io.recv_frame()?;
    // The sessions charge the full hello frame to their hop themselves;
    // `hello_len` carries the length because the cursor they parse from is
    // consumed by then.
    let hello_len = 4 + hello.len();
    let mut cur = Cur(&hello);
    match cur.u8("hello opcode").map_err(session_err)? {
        HELLO_WRITER => writer_session(hub, io, &mut cur, hello_len, shm),
        HELLO_READER => reader_session(hub, relays, io, &mut cur, hello_len, shm),
        HELLO_CONTROL => control_session(hub, io),
        op => Err(session_err(format!("unknown hello opcode {op:#04x}"))),
    }
}

fn writer_session(
    hub: &Arc<StreamHub>,
    io: &mut dyn FrameIo,
    hello: &mut Cur<'_>,
    hello_len: usize,
    shm: bool,
) -> io::Result<()> {
    let name = hello.string("stream name").map_err(session_err)?;
    let rank = hello.u32("rank").map_err(session_err)? as usize;
    let nranks = hello.u32("nranks").map_err(session_err)? as usize;
    let queue = hello.u32("queue capacity").map_err(session_err)? as usize;
    let rendezvous = hello.u8("rendezvous flag").map_err(session_err)? != 0;
    let groups = hello.u32("reader groups").map_err(session_err)? as usize;
    let (proto, comp) = negotiated(hello).map_err(session_err)?;
    if rank >= nranks || queue == 0 || groups == 0 {
        return Err(session_err(format!(
            "invalid writer hello for {name:?}: rank {rank}/{nranks} queue {queue} groups {groups}"
        )));
    }
    let options = WriterOptions::default()
        .with_queue_capacity(queue)
        .with_rendezvous(rendezvous)
        .with_reader_groups(groups);
    let conn = hub.transport().open_writer(&name, rank, nranks, options);
    let ledger = HopLedger {
        counters: Arc::clone(&conn.counters),
        hop: Hop::Writer,
        shm,
    };
    let mut endpoint = conn.endpoint;
    ledger.charge(hello_len);
    // Interned definitions this connection has applied (v2).
    let mut defs = MetaDefs::default();

    let mut started = Vec::with_capacity(11);
    started.put_u8(REPLY_STARTED);
    started.put_u64_le(conn.start_step);
    started.put_u8(proto.tag());
    started.put_u8(comp.tag());
    ledger.charge(reply(io, &started)?);

    loop {
        let payload = match io.recv_frame() {
            Ok(p) => p,
            Err(_) => {
                // The connection dropped without a terminator — the process
                // is gone (killed, crashed before abandon). Noisy: readers
                // must not wait out the timeout for steps that will never
                // commit.
                endpoint.disconnect();
                return Ok(());
            }
        };
        ledger.charge(4 + payload.len());
        let mut cur = Cur(&payload);
        match cur.u8("writer opcode").map_err(session_err)? {
            W_BEGIN => {
                let step = cur.u64("step").map_err(session_err)?;
                let result = endpoint.begin_step(step);
                ledger.charge(reply_result(io, result)?);
            }
            W_STEP => {
                let step = cur.u64("step").map_err(session_err)?;
                let mut failed = None;
                if proto == WireProtocol::V2 {
                    let ndefs = cur.u32("def count").map_err(session_err)?;
                    for _ in 0..ndefs {
                        if let Err(e) = defs.decode_def(&mut cur.0) {
                            failed = Some(proto_gone(&name, format!("bad meta def: {e}")));
                            break;
                        }
                    }
                }
                if failed.is_none() {
                    match cur.u32("chunk count") {
                        Err(d) => failed = Some(proto_gone(&name, d)),
                        Ok(nchunks) => {
                            for _ in 0..nchunks {
                                let chunk = match proto {
                                    WireProtocol::V1 => {
                                        cur.chunk().map_err(|d| proto_gone(&name, d))
                                    }
                                    WireProtocol::V2 => decode_chunk_interned(&mut cur.0, &defs)
                                        .map_err(|e| {
                                            proto_gone(&name, format!("bad chunk frame: {e}"))
                                        }),
                                };
                                match chunk {
                                    Ok(chunk) => endpoint.put(step, chunk),
                                    Err(e) => {
                                        failed = Some(e);
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
                let result = match failed {
                    Some(e) => Err(e),
                    None => endpoint.end_step(step),
                };
                ledger.charge(reply_result(io, result)?);
            }
            W_CLOSE => {
                endpoint.close();
                ledger.charge(reply(io, &[REPLY_OK])?);
                return Ok(());
            }
            W_ABANDON => {
                let noisy = cur.u8("abandon flag").map_err(session_err)? != 0;
                if noisy {
                    endpoint.disconnect();
                } else {
                    endpoint.abandon();
                }
                return Ok(());
            }
            op => return Err(session_err(format!("unknown writer opcode {op:#04x}"))),
        }
    }
}

fn reader_session(
    hub: &Arc<StreamHub>,
    relays: &Arc<RelayTable>,
    io: &mut dyn FrameIo,
    hello: &mut Cur<'_>,
    hello_len: usize,
    shm: bool,
) -> io::Result<()> {
    let name = hello.string("stream name").map_err(session_err)?;
    let group = hello.string("reader group").map_err(session_err)?;
    let rank = hello.u32("rank").map_err(session_err)? as usize;
    let nranks = hello.u32("nranks").map_err(session_err)? as usize;
    let (proto, comp) = negotiated(hello).map_err(session_err)?;
    if rank >= nranks {
        return Err(session_err(format!(
            "invalid reader hello for {name:?}: rank {rank}/{nranks}"
        )));
    }
    let conn = hub.transport().open_reader(&name, &group, rank, nranks);
    let counters = conn.counters;
    let ledger = HopLedger {
        counters: Arc::clone(&counters),
        hop: Hop::Reader,
        shm,
    };
    let mut endpoint = conn.endpoint;
    ledger.charge(hello_len);
    let relay = relays.stream(&name);
    let _gauge = (proto == WireProtocol::V2).then(|| ReaderCountGuard::new(Arc::clone(&relay)));
    // Definition ids already sent to this session (v2 catch-up mark).
    let mut defs_seen = 0u32;
    let trace_id = hub.tracer().intern(&name);

    let mut started = Vec::with_capacity(11);
    started.put_u8(REPLY_STARTED);
    started.put_u64_le(conn.first_step);
    started.put_u8(proto.tag());
    started.put_u8(comp.tag());
    ledger.charge(reply(io, &started)?);

    loop {
        // A reader hanging up mid-stream needs no bookkeeping here: its
        // partial releases are reset by the supervisor on restart, or the
        // group is detached on degrade.
        let payload = io.recv_frame()?;
        ledger.charge(4 + payload.len());
        let mut cur = Cur(&payload);
        match cur.u8("reader opcode").map_err(session_err)? {
            R_BEGIN => {
                let step = cur.u64("step").map_err(session_err)?;
                match endpoint.fetch_step(step) {
                    Ok(Some(contents)) => {
                        let encoded = match proto {
                            WireProtocol::V1 => {
                                // v1 re-sends every chunk self-described;
                                // byte layout identical to the container.
                                (|| {
                                    let mut buf = Vec::with_capacity(64);
                                    buf.put_u8(REPLY_STEP);
                                    buf.put_u64_le(step);
                                    let nchunks: usize =
                                        contents.values().map(|v| v.chunks.len()).sum();
                                    buf.put_u32_le(nchunks as u32);
                                    for slot in contents.values() {
                                        for chunk in &slot.chunks {
                                            encode_chunk(&mut buf, chunk)?;
                                        }
                                    }
                                    Ok((buf, 0, 0))
                                })()
                            }
                            WireProtocol::V2 => {
                                relay.encode_step(step, comp, &contents, &mut defs_seen)
                            }
                        };
                        match encoded {
                            Ok((frame, raw, wire)) => {
                                if raw > 0 {
                                    counters.add_compression(raw as usize, wire as usize);
                                    if wire < raw {
                                        hub.tracer().instant(
                                            EventKind::Compressed,
                                            TraceSite::stream(trace_id, rank, step),
                                            raw - wire,
                                        );
                                    }
                                }
                                ledger.charge(reply(io, &frame)?);
                            }
                            Err(e) => {
                                let mut buf = Vec::with_capacity(128);
                                let gone = proto_gone(&name, format!("unencodable step: {e}"));
                                encode_err(&mut buf, &gone);
                                ledger.charge(reply(io, &buf)?);
                            }
                        }
                    }
                    Ok(None) => {
                        ledger.charge(reply(io, &[REPLY_EOS])?);
                    }
                    Err(e) => {
                        let mut buf = Vec::with_capacity(128);
                        encode_err(&mut buf, &e);
                        ledger.charge(reply(io, &buf)?);
                    }
                }
            }
            R_RELEASE => {
                let step = cur.u64("step").map_err(session_err)?;
                endpoint.release_step(step);
                if proto == WireProtocol::V2 {
                    relay.note_release(step);
                }
            }
            op => return Err(session_err(format!("unknown reader opcode {op:#04x}"))),
        }
    }
}

fn control_session(hub: &Arc<StreamHub>, io: &mut dyn FrameIo) -> io::Result<()> {
    reply(io, &[REPLY_OK])?;
    loop {
        let payload = match io.recv_frame() {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mut cur = Cur(&payload);
        match cur.u8("control opcode").map_err(session_err)? {
            C_POISON => {
                let reason = cur.string("poison reason").map_err(session_err)?;
                hub.poison_all(&reason);
                reply(io, &[REPLY_OK])?;
            }
            C_FORCE_EOS => {
                let name = cur.string("stream name").map_err(session_err)?;
                hub.force_end_of_stream(&name);
                reply(io, &[REPLY_OK])?;
            }
            C_DETACH => {
                let name = cur.string("stream name").map_err(session_err)?;
                let group = cur.string("reader group").map_err(session_err)?;
                hub.detach_reader_group(&name, &group);
                reply(io, &[REPLY_OK])?;
            }
            C_RESTART => {
                let nin = cur.u32("input count").map_err(session_err)?;
                let mut inputs = Vec::with_capacity((nin as usize).min(1024));
                for _ in 0..nin {
                    let stream = cur.string("input stream").map_err(session_err)?;
                    let group = cur.string("input group").map_err(session_err)?;
                    inputs.push((stream, group));
                }
                let nout = cur.u32("output count").map_err(session_err)?;
                let mut outputs = Vec::with_capacity((nout as usize).min(1024));
                for _ in 0..nout {
                    outputs.push(cur.string("output stream").map_err(session_err)?);
                }
                hub.prepare_restart(&inputs, &outputs);
                reply(io, &[REPLY_OK])?;
            }
            C_SET_TIMEOUT => {
                let micros = cur.u64("timeout").map_err(session_err)?;
                hub.set_wait_timeout(Duration::from_micros(micros));
                reply(io, &[REPLY_OK])?;
            }
            C_METRICS => {
                let all = hub.all_metrics();
                // Each entry is framed into a scratch buffer first so one
                // unframeable stream name drops that entry, not the reply.
                let mut bodies = Vec::with_capacity(all.len());
                for m in &all {
                    let mut body = Vec::with_capacity(128);
                    if encode_metrics(&mut body, m).is_ok() {
                        bodies.push(body);
                    }
                }
                let mut buf = Vec::with_capacity(64 + bodies.len() * 128);
                buf.put_u8(REPLY_METRICS);
                buf.put_u32_le(bodies.len() as u32);
                for body in &bodies {
                    buf.extend_from_slice(body);
                }
                reply(io, &buf)?;
            }
            op => return Err(session_err(format!("unknown control opcode {op:#04x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StepStatus;
    use sb_data::{Buffer, Region, Shape, Variable};

    fn var(vals: Vec<f64>) -> Variable {
        Variable::new("x", Shape::linear("n", vals.len()), Buffer::F64(vals)).unwrap()
    }

    #[test]
    fn oversized_protocol_string_is_an_error_not_a_panic() {
        // Regression: `put_wire_str` used to `.expect()` on the u32 length
        // check, panicking the client thread on an oversized stream or
        // group name. The length gate is exercised by injection — nobody
        // allocates a >4 GiB name in a test.
        assert!(check_wire_str_len(0).is_ok());
        assert!(check_wire_str_len(u32::MAX as usize).is_ok());
        let err = check_wire_str_len(u32::MAX as usize + 1).unwrap_err();
        assert!(err.contains("exceeds the u32 wire length field"), "{err}");
        assert!(check_wire_str_len(usize::MAX).is_err());

        // The fallible path still frames ordinary strings byte-identically
        // to the old infallible one.
        let mut buf = Vec::new();
        put_wire_str(&mut buf, "t.fp").unwrap();
        let mut expect = Vec::new();
        sb_data::wire::put_str(&mut expect, "t.fp").unwrap();
        assert_eq!(buf, expect);
    }

    #[test]
    fn unframeable_error_reply_degrades_to_constant_peer_gone() {
        // An error whose strings cannot be framed must still produce a
        // decodable reply; the fallback is byte-built without `put_wire_str`.
        let mut buf = Vec::new();
        const DETAIL: &str = "unframeable error reply";
        buf.put_u8(REPLY_ERR_PEER_GONE);
        buf.put_u32_le(0);
        buf.put_u32_le(DETAIL.len() as u32);
        buf.extend_from_slice(DETAIL.as_bytes());
        let mut cur = Cur(&buf);
        let op = cur.u8("reply opcode").unwrap();
        let err = decode_err(op, &mut cur).unwrap();
        match err {
            StreamError::PeerGone { stream, reason } => {
                assert_eq!(stream, "");
                assert_eq!(reason, DETAIL);
            }
            other => panic!("expected PeerGone, got {other:?}"),
        }
    }

    #[test]
    fn tcp_round_trip_single_stream() {
        let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
        let hub = StreamHub::connect(&broker.url()).unwrap();
        assert_eq!(hub.backend(), "tcp");

        let mut w = hub.open_writer("t.fp", 0, 1, WriterOptions::default());
        for step in 0..3 {
            w.begin_step().unwrap();
            w.put_whole(var(vec![step as f64, 1.0, 2.0]));
            w.end_step().unwrap();
        }
        w.close();

        let mut r = hub.open_reader("t.fp", 0, 1);
        for step in 0..3 {
            assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(step));
            let v = r.get_whole("x").unwrap();
            assert_eq!(v.data.to_f64_vec(), vec![step as f64, 1.0, 2.0]);
            r.end_step();
        }
        assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);

        let metrics = hub.metrics("t.fp").unwrap();
        assert_eq!(metrics.steps_committed, 3);
        assert!(metrics.bytes_on_wire > 0, "wire bytes must be counted");
    }

    #[test]
    fn tcp_mxn_redistribution_across_connections() {
        let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
        let hub = StreamHub::connect(&broker.url()).unwrap();

        // Two writer ranks, each holding half the rows of a 4x3 array.
        let writers: Vec<_> = (0..2)
            .map(|rank| {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || {
                    let mut w = hub.open_writer("m.fp", rank, 2, WriterOptions::default());
                    let meta = sb_data::VariableMeta::new(
                        "grid",
                        Shape::of(&[("rows", 4), ("cols", 3)]),
                        sb_data::DType::F64,
                    );
                    let base = rank * 2;
                    let data: Vec<f64> = (0..6).map(|i| (base * 3 + i) as f64).collect();
                    let chunk = Chunk::new(
                        meta,
                        Region::new(vec![base, 0], vec![2, 3]),
                        Buffer::F64(data),
                    )
                    .unwrap();
                    w.begin_step().unwrap();
                    w.put(chunk);
                    w.end_step().unwrap();
                    w.close();
                })
            })
            .collect();

        let mut r = hub.open_reader("m.fp", 0, 1);
        assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
        let v = r.get_whole("grid").unwrap();
        assert_eq!(
            v.data.to_f64_vec(),
            (0..12).map(|i| i as f64).collect::<Vec<_>>()
        );
        r.end_step();
        assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn killed_connection_surfaces_peer_gone_promptly() {
        let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
        broker.hub().set_wait_timeout(Duration::from_secs(30));
        let hub = StreamHub::connect(&broker.url()).unwrap();
        hub.set_wait_timeout(Duration::from_secs(30));

        let mut w = hub.open_writer("k.fp", 0, 1, WriterOptions::default());
        w.begin_step().unwrap();
        w.put_whole(var(vec![1.0]));
        w.end_step().unwrap();
        // Simulate a killed process: the socket just goes away, no
        // terminator frame.
        drop(w);

        // Actually `drop` runs close(); emulate the kill by disconnecting
        // explicitly on a second stream instead.
        let mut w2 = hub.open_writer("k2.fp", 0, 1, WriterOptions::default());
        w2.begin_step().unwrap();
        w2.put_whole(var(vec![1.0]));
        w2.end_step().unwrap();
        w2.disconnect();

        let mut r = hub.open_reader("k2.fp", 0, 1);
        assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
        r.end_step();
        let start = Instant::now();
        let err = match r.begin_step() {
            Err(e) => e,
            Ok(s) => panic!("expected PeerGone, got {s:?}"),
        };
        assert!(matches!(err, StreamError::PeerGone { .. }), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "PeerGone must surface promptly, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn connect_timeout_surfaces_as_stream_timeout() {
        // Nothing listens on this port (bound then dropped).
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let hub = StreamHub::connect_with(
            &format!("tcp://127.0.0.1:{port}"),
            TcpOptions::default().with_connect_timeout(Duration::from_millis(200)),
        )
        .unwrap();
        let mut w = hub.open_writer("c.fp", 0, 1, WriterOptions::default());
        let err = w.begin_step().unwrap_err();
        assert!(matches!(err, StreamError::Timeout { .. }), "{err}");
        w.abandon();
    }

    #[test]
    fn bad_url_is_rejected() {
        assert!(StreamHub::connect("udp://127.0.0.1:1").is_err());
        assert!(StreamHub::connect("tcp://not a host").is_err());
    }

    /// Pumps `steps` steps of `vals` through one stream and returns the
    /// final metrics snapshot plus the payload bytes per step.
    fn pump(hub: &Arc<StreamHub>, name: &str, steps: u64, vals: Vec<f64>) -> (StreamMetrics, u64) {
        let payload = (vals.len() * 8) as u64;
        let mut w = hub.open_writer(name, 0, 1, WriterOptions::default());
        for _ in 0..steps {
            w.begin_step().unwrap();
            w.put_whole(var(vals.clone()));
            w.end_step().unwrap();
        }
        w.close();
        let mut r = hub.open_reader(name, 0, 1);
        for step in 0..steps {
            assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(step));
            let v = r.get_whole("x").unwrap();
            assert_eq!(v.data.to_f64_vec(), vals);
            r.end_step();
        }
        assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
        (hub.metrics(name).unwrap(), payload)
    }

    #[test]
    fn v1_clients_still_round_trip() {
        let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
        let hub = StreamHub::connect_with(
            &broker.url(),
            TcpOptions::default().with_protocol(WireProtocol::V1),
        )
        .unwrap();
        let (m, payload) = pump(&hub, "v1.fp", 3, (0..32).map(f64::from).collect());
        assert_eq!(m.steps_committed, 3);
        assert_eq!(m.bytes_written, 3 * payload);
        // v1 has no codec, so the compression ledger shows pass-through.
        assert_eq!(m.wire_uncompressed_bytes, m.wire_compressed_bytes);
    }

    #[test]
    fn per_hop_wire_accounting_is_single_counted() {
        let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
        let hub = StreamHub::connect(&broker.url()).unwrap();
        let steps = 4u64;
        let (m, payload) = pump(&hub, "h.fp", steps, (0..1024).map(f64::from).collect());
        let floor = steps * payload;
        assert_eq!(m.bytes_on_wire, m.wire_writer_bytes + m.wire_reader_bytes);
        // Each hop carries every payload byte exactly once, plus framing
        // and protocol small-talk — nowhere near the doubled 2x-per-hop
        // the old shared counter reported.
        for (hop, bytes) in [
            ("writer", m.wire_writer_bytes),
            ("reader", m.wire_reader_bytes),
        ] {
            assert!(bytes >= floor, "{hop} hop lost bytes: {bytes} < {floor}");
            assert!(
                (bytes as f64) < (floor as f64) * 1.1,
                "{hop} hop amplification too high: {bytes} vs payload {floor}"
            );
        }
    }

    #[test]
    fn compressed_v2_round_trips_and_shrinks_payload() {
        let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
        let hub = StreamHub::connect_with(
            &broker.url(),
            TcpOptions::default().with_compression(Compression::Lz),
        )
        .unwrap();
        // A constant payload is maximally compressible.
        let (m, payload) = pump(&hub, "z.fp", 3, vec![7.5; 2048]);
        assert_eq!(m.bytes_written, 3 * payload);
        assert!(
            m.wire_compressed_bytes * 10 < m.wire_uncompressed_bytes,
            "constant payload should collapse: {} vs {}",
            m.wire_compressed_bytes,
            m.wire_uncompressed_bytes
        );
        // Both hops move compressed frames, so each stays far under the
        // raw payload volume.
        assert!(m.wire_writer_bytes < 3 * payload / 4);
        assert!(m.wire_reader_bytes < 3 * payload / 4);
    }

    #[test]
    fn interning_sends_each_definition_once_per_connection() {
        let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
        let hub = StreamHub::connect(&broker.url()).unwrap();
        let steps = 4u64;
        let (m, payload) = pump(&hub, "i.fp", steps, (0..256).map(f64::from).collect());
        // v2 overhead per step is bounded by framing + the interned chunk
        // header (~80 bytes); the meta definition itself travels only with
        // step 0. The budget still catches a meta re-sent every step, which
        // would add >60 bytes of name/dims/labels each time.
        let budget = steps * (payload + 96) + 512;
        assert!(
            m.wire_writer_bytes <= budget,
            "writer hop resends metadata: {} > {budget}",
            m.wire_writer_bytes
        );
        assert!(
            m.wire_reader_bytes <= budget,
            "reader hop resends metadata: {} > {budget}",
            m.wire_reader_bytes
        );
    }
}
