//! The per-rank writer handle.

use std::sync::Arc;

use sb_data::{Chunk, Variable};

use crate::error::StreamResult;
use crate::trace::{EventKind, TraceSite, Tracer};
use crate::transport::{WriterConnection, WriterEndpoint};

/// One writer rank's handle onto a stream.
///
/// All ranks of the writer group advance through steps in lockstep:
/// `begin_step` → one or more [`StreamWriter::put`] calls → `end_step`.
/// Dropping the handle closes this rank's side of the stream; when every
/// rank has closed, readers observe end-of-stream.
///
/// A handle dropped mid-step, during a panic, or after
/// [`StreamWriter::abandon`] does *not* close the stream: a failing rank
/// must never signal a clean EOS — the workflow supervisor decides whether
/// to restart the component or tear the stream down.
///
/// The handle is transport-agnostic: the same protocol drives the in-proc
/// backend (steps shared by `Arc`) and the TCP backend (steps framed onto a
/// socket, with `put`s batched until `end_step`).
pub struct StreamWriter {
    endpoint: Box<dyn WriterEndpoint>,
    tracer: Arc<Tracer>,
    trace_id: u32,
    rank: usize,
    nranks: usize,
    next_step: u64,
    in_step: bool,
    closed: bool,
}

impl StreamWriter {
    pub(crate) fn new(conn: WriterConnection, rank: usize, nranks: usize) -> StreamWriter {
        StreamWriter {
            endpoint: conn.endpoint,
            tracer: conn.tracer,
            trace_id: conn.trace_id,
            rank,
            nranks,
            next_step: conn.start_step,
            in_step: false,
            closed: false,
        }
    }

    /// This rank's id within the writer group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Size of the writer group.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The step the handle is currently in (or will enter next).
    pub fn current_step(&self) -> u64 {
        self.next_step
    }

    /// The hub tracer behind this stream — for callers that run their own
    /// step loop (the sim driver) and stamp component-phase spans onto the
    /// same timeline.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Opens the next step, blocking while the writer-side buffer is full.
    pub fn begin_step(&mut self) -> StreamResult<()> {
        assert!(!self.closed, "begin_step on a closed writer");
        assert!(!self.in_step, "begin_step called twice without end_step");
        let start_ns = if self.tracer.enabled() {
            self.tracer.now_ns()
        } else {
            0
        };
        self.endpoint.begin_step(self.next_step)?;
        self.tracer.span(
            EventKind::WriterBlocked,
            TraceSite::stream(self.trace_id, self.rank, self.next_step),
            start_ns,
        );
        self.in_step = true;
        Ok(())
    }

    /// Contributes one chunk of a variable to the open step.
    pub fn put(&mut self, chunk: Chunk) {
        assert!(self.in_step, "put outside begin_step/end_step");
        self.endpoint.put(self.next_step, chunk);
    }

    /// Convenience: contributes an entire variable as this rank's chunk
    /// (the single-writer or replicated-metadata case).
    pub fn put_whole(&mut self, var: Variable) {
        self.put(Chunk::whole(var));
    }

    /// Commits the open step. The last committing rank publishes it to
    /// readers; in rendezvous mode this blocks until it is consumed.
    pub fn end_step(&mut self) -> StreamResult<()> {
        assert!(self.in_step, "end_step without begin_step");
        self.endpoint.end_step(self.next_step)?;
        self.in_step = false;
        self.next_step += 1;
        Ok(())
    }

    /// Closes this rank's side of the stream. Idempotent; also runs on a
    /// clean drop.
    pub fn close(&mut self) {
        assert!(!self.in_step, "close inside an open step");
        if !self.closed {
            self.closed = true;
            self.endpoint.close();
        }
    }

    /// Walks away from the stream *without* closing it: readers see neither
    /// further data nor EOS from this rank. Called by failing components so
    /// downstream never mistakes a crash for a clean end of stream; the
    /// workflow supervisor then restarts the component or tears the stream
    /// down.
    pub fn abandon(&mut self) {
        if !self.closed {
            self.closed = true;
            self.in_step = false;
            self.endpoint.abandon();
        }
    }

    /// Declares this rank gone *for good* — no supervisor will restart it.
    /// Readers blocked on steps the writer group can no longer commit fail
    /// promptly with [`crate::StreamError::PeerGone`] instead of waiting
    /// out the hub timeout. (A dropped TCP connection reports the same.)
    pub fn disconnect(&mut self) {
        if !self.closed {
            self.closed = true;
            self.in_step = false;
            self.endpoint.disconnect();
        }
    }
}

impl Drop for StreamWriter {
    fn drop(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        // Only a clean drop (not mid-step, not unwinding) counts as a
        // close; a failing rank abandons instead.
        if !self.in_step && !std::thread::panicking() {
            self.endpoint.close();
        } else {
            self.endpoint.abandon();
        }
    }
}
