//! Per-stream transfer counters.
//!
//! The paper's evaluation reports per-component and end-to-end throughput in
//! KB/s; these counters are what the bench harnesses read to compute the
//! same numbers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free counters updated by writer and reader ranks of one stream.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub bytes_written: AtomicU64,
    pub bytes_read: AtomicU64,
    pub steps_committed: AtomicU64,
    pub steps_consumed: AtomicU64,
    pub writer_wait_ns: AtomicU64,
    pub reader_wait_ns: AtomicU64,
    pub bytes_copied: AtomicU64,
    pub copies_elided: AtomicU64,
    pub zero_fills_elided: AtomicU64,
    pub bytes_on_wire: AtomicU64,
}

impl Counters {
    pub(crate) fn add_written(&self, bytes: usize) {
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_read(&self, bytes: usize) {
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_writer_wait(&self, d: Duration) {
        self.writer_wait_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_reader_wait(&self, d: Duration) {
        self.reader_wait_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_copied(&self, bytes: usize) {
        self.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_copy_elided(&self) {
        self.copies_elided.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_zero_fill_elided(&self) {
        self.zero_fills_elided.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_wire(&self, bytes: usize) {
        self.bytes_on_wire
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, name: &str) -> StreamMetrics {
        StreamMetrics {
            stream: name.to_string(),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            steps_committed: self.steps_committed.load(Ordering::Relaxed),
            steps_consumed: self.steps_consumed.load(Ordering::Relaxed),
            writer_wait: Duration::from_nanos(self.writer_wait_ns.load(Ordering::Relaxed)),
            reader_wait: Duration::from_nanos(self.reader_wait_ns.load(Ordering::Relaxed)),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            copies_elided: self.copies_elided.load(Ordering::Relaxed),
            zero_fills_elided: self.zero_fills_elided.load(Ordering::Relaxed),
            bytes_on_wire: self.bytes_on_wire.load(Ordering::Relaxed),
        }
    }

    /// Field-wise merge of `other` into a snapshot taken later — how a TCP
    /// client hub folds its local read-side counters into the broker's
    /// authoritative snapshot.
    pub(crate) fn merge_into(&self, m: &mut StreamMetrics) {
        m.bytes_written += self.bytes_written.load(Ordering::Relaxed);
        m.bytes_read += self.bytes_read.load(Ordering::Relaxed);
        m.writer_wait += Duration::from_nanos(self.writer_wait_ns.load(Ordering::Relaxed));
        m.reader_wait += Duration::from_nanos(self.reader_wait_ns.load(Ordering::Relaxed));
        m.bytes_copied += self.bytes_copied.load(Ordering::Relaxed);
        m.copies_elided += self.copies_elided.load(Ordering::Relaxed);
        m.zero_fills_elided += self.zero_fills_elided.load(Ordering::Relaxed);
        m.bytes_on_wire += self.bytes_on_wire.load(Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of one stream's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamMetrics {
    /// Stream name.
    pub stream: String,
    /// Payload bytes committed by writer ranks.
    pub bytes_written: u64,
    /// Payload bytes assembled into reader bounding boxes.
    pub bytes_read: u64,
    /// Steps fully committed by the writer group.
    pub steps_committed: u64,
    /// Steps fully released by the reader group.
    pub steps_consumed: u64,
    /// Total time writer ranks spent blocked (backpressure/rendezvous).
    pub writer_wait: Duration,
    /// Total time reader ranks spent blocked waiting for data.
    pub reader_wait: Duration,
    /// Payload bytes physically copied while assembling reader boxes.
    /// Zero on the pure fast path; `bytes_read` still counts the bytes
    /// *served*, copied or shared.
    pub bytes_copied: u64,
    /// Reader gets answered by sharing a chunk's allocation (`Arc` clone)
    /// instead of copying — the exact-cover fast path.
    pub copies_elided: u64,
    /// Reader gets assembled by appending tiling slabs, skipping the
    /// zero-fill of the destination buffer.
    pub zero_fills_elided: u64,
    /// Frame bytes that crossed a socket for this stream (headers plus
    /// payload, both directions). Zero on the in-proc backend, where steps
    /// move by `Arc` and nothing is serialized.
    pub bytes_on_wire: u64,
}

impl StreamMetrics {
    /// Writer-side throughput over `elapsed`, in KB/s (the paper's unit).
    pub fn write_throughput_kbs(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.bytes_written as f64 / 1024.0 / elapsed.as_secs_f64()
    }
}
