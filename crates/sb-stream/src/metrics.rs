//! Per-stream transfer counters.
//!
//! The paper's evaluation reports per-component and end-to-end throughput in
//! KB/s; these counters are what the bench harnesses read to compute the
//! same numbers.
//!
//! # Honest wire accounting
//!
//! A step over the TCP backend crosses two socket *hops*: writer → broker
//! (`W_STEP` and its replies) and broker → reader (`REPLY_STEP` and the
//! fetch/release verbs around it). Each frame byte is charged exactly once,
//! to the hop it crossed, by whichever side plays *broker* for that hop —
//! the broker sessions see every frame of every client on both hops, so
//! they are the single metering authority. Client endpoints keep their own
//! hop counters purely as a fallback snapshot for when the broker is
//! unreachable; [`Counters::merge_into`] deliberately leaves the wire
//! counters out so the two views never sum. (Earlier revisions charged both
//! ends of every frame into one shared counter, which reported a 1×1
//! pipeline as "4× amplification" when the true per-hop cost was ~1×.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free counters updated by writer and reader ranks of one stream.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub bytes_written: AtomicU64,
    pub bytes_read: AtomicU64,
    pub steps_committed: AtomicU64,
    pub steps_consumed: AtomicU64,
    pub writer_wait_ns: AtomicU64,
    pub reader_wait_ns: AtomicU64,
    pub bytes_copied: AtomicU64,
    pub copies_elided: AtomicU64,
    pub zero_fills_elided: AtomicU64,
    pub wire_writer_bytes: AtomicU64,
    pub wire_reader_bytes: AtomicU64,
    pub wire_shm_bytes: AtomicU64,
    pub wire_uncompressed_bytes: AtomicU64,
    pub wire_compressed_bytes: AtomicU64,
}

impl Counters {
    pub(crate) fn add_written(&self, bytes: usize) {
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_read(&self, bytes: usize) {
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_writer_wait(&self, d: Duration) {
        self.writer_wait_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_reader_wait(&self, d: Duration) {
        self.reader_wait_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_copied(&self, bytes: usize) {
        self.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_copy_elided(&self) {
        self.copies_elided.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_zero_fill_elided(&self) {
        self.zero_fills_elided.fetch_add(1, Ordering::Relaxed);
    }

    /// Charges frame bytes to the writer → broker hop.
    pub(crate) fn add_wire_writer(&self, bytes: usize) {
        self.wire_writer_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Charges frame bytes to the broker → reader hop.
    pub(crate) fn add_wire_reader(&self, bytes: usize) {
        self.wire_reader_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Attributes frame bytes to the shared-memory fabric. Charged by shm
    /// broker sessions *in addition to* the per-hop counters above (same
    /// single-authority rule: the broker session is the only side that
    /// charges), so `wire_shm_bytes ≤ bytes_on_wire` and the hop totals stay
    /// fabric-agnostic.
    pub(crate) fn add_wire_shm(&self, bytes: usize) {
        self.wire_shm_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one payload passing through the codec: its size before
    /// compression and the bytes that actually went on the wire. Charged at
    /// the encode site only, so client and broker contributions are
    /// disjoint events and merge cleanly.
    pub(crate) fn add_compression(&self, raw: usize, wire: usize) {
        self.wire_uncompressed_bytes
            .fetch_add(raw as u64, Ordering::Relaxed);
        self.wire_compressed_bytes
            .fetch_add(wire as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, name: &str) -> StreamMetrics {
        let wire_writer = self.wire_writer_bytes.load(Ordering::Relaxed);
        let wire_reader = self.wire_reader_bytes.load(Ordering::Relaxed);
        StreamMetrics {
            stream: name.to_string(),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            steps_committed: self.steps_committed.load(Ordering::Relaxed),
            steps_consumed: self.steps_consumed.load(Ordering::Relaxed),
            writer_wait: Duration::from_nanos(self.writer_wait_ns.load(Ordering::Relaxed)),
            reader_wait: Duration::from_nanos(self.reader_wait_ns.load(Ordering::Relaxed)),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            copies_elided: self.copies_elided.load(Ordering::Relaxed),
            zero_fills_elided: self.zero_fills_elided.load(Ordering::Relaxed),
            wire_writer_bytes: wire_writer,
            wire_reader_bytes: wire_reader,
            wire_shm_bytes: self.wire_shm_bytes.load(Ordering::Relaxed),
            wire_uncompressed_bytes: self.wire_uncompressed_bytes.load(Ordering::Relaxed),
            wire_compressed_bytes: self.wire_compressed_bytes.load(Ordering::Relaxed),
            bytes_on_wire: wire_writer + wire_reader,
        }
    }

    /// Field-wise merge of `other` into a snapshot taken later — how a TCP
    /// client hub folds its local read-side counters into the broker's
    /// authoritative snapshot.
    ///
    /// Wire-hop counters are **not** merged: the broker already metered
    /// every frame this client sent or received, so adding the client's
    /// local mirror would double-count each byte (the pre-v2 bug that
    /// reported 1×1 pipelines at "4×"). Compression counters *are* merged —
    /// they are charged only where a payload is encoded (client for the
    /// writer hop, broker for the reader hop), so the contributions are
    /// disjoint.
    pub(crate) fn merge_into(&self, m: &mut StreamMetrics) {
        m.bytes_written += self.bytes_written.load(Ordering::Relaxed);
        m.bytes_read += self.bytes_read.load(Ordering::Relaxed);
        m.writer_wait += Duration::from_nanos(self.writer_wait_ns.load(Ordering::Relaxed));
        m.reader_wait += Duration::from_nanos(self.reader_wait_ns.load(Ordering::Relaxed));
        m.bytes_copied += self.bytes_copied.load(Ordering::Relaxed);
        m.copies_elided += self.copies_elided.load(Ordering::Relaxed);
        m.zero_fills_elided += self.zero_fills_elided.load(Ordering::Relaxed);
        m.wire_uncompressed_bytes += self.wire_uncompressed_bytes.load(Ordering::Relaxed);
        m.wire_compressed_bytes += self.wire_compressed_bytes.load(Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of one stream's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamMetrics {
    /// Stream name.
    pub stream: String,
    /// Payload bytes committed by writer ranks.
    pub bytes_written: u64,
    /// Payload bytes assembled into reader bounding boxes.
    pub bytes_read: u64,
    /// Steps fully committed by the writer group.
    pub steps_committed: u64,
    /// Steps fully released by the reader group.
    pub steps_consumed: u64,
    /// Total time writer ranks spent blocked (backpressure/rendezvous).
    pub writer_wait: Duration,
    /// Total time reader ranks spent blocked waiting for data.
    pub reader_wait: Duration,
    /// Payload bytes physically copied while assembling reader boxes.
    /// Zero on the pure fast path; `bytes_read` still counts the bytes
    /// *served*, copied or shared.
    pub bytes_copied: u64,
    /// Reader gets answered by sharing a chunk's allocation (`Arc` clone)
    /// instead of copying — the exact-cover fast path.
    pub copies_elided: u64,
    /// Reader gets assembled by appending tiling slabs, skipping the
    /// zero-fill of the destination buffer.
    pub zero_fills_elided: u64,
    /// Frame bytes that crossed the writer → broker socket hop (headers
    /// plus payload, both directions of that connection), each counted
    /// once. Zero on the in-proc backend.
    pub wire_writer_bytes: u64,
    /// Frame bytes that crossed the broker → reader socket hop, each
    /// counted once. Zero on the in-proc backend.
    pub wire_reader_bytes: u64,
    /// Frame bytes that moved over the shared-memory ring fabric. A
    /// fabric *attribution* of the hop totals, not a third hop: every byte
    /// here is also in `wire_writer_bytes` or `wire_reader_bytes`. Zero on
    /// the tcp and in-proc backends.
    pub wire_shm_bytes: u64,
    /// Payload bytes entering the wire codec before compression. Equal to
    /// `wire_compressed_bytes` when compression is off or never won.
    pub wire_uncompressed_bytes: u64,
    /// Payload bytes leaving the wire codec — after compression where it
    /// was applied and kept.
    pub wire_compressed_bytes: u64,
    /// Total frame bytes across both hops: `wire_writer_bytes +
    /// wire_reader_bytes`. Zero on the in-proc backend, where steps move by
    /// `Arc` and nothing is serialized.
    pub bytes_on_wire: u64,
}

impl StreamMetrics {
    /// Writer-side throughput over `elapsed`, in KB/s (the paper's unit).
    pub fn write_throughput_kbs(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.bytes_written as f64 / 1024.0 / elapsed.as_secs_f64()
    }
}
