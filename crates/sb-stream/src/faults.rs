//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a list of directives — kill, stall, drop-chunk, or
//! delay-jitter — each targeting one component label. Installing a plan on a
//! [`crate::StreamHub`] makes the component run loops consult it at the top
//! of every step via [`crate::StreamHub::fault_for`]; with a fixed seed and
//! fixed directives the whole run is reproducible, which is what lets the
//! chaos tests assert golden outputs *under* injected failures.
//!
//! Plans are stateful (discrete directives fire a bounded number of times
//! per rank, so a restarted component is not re-killed forever); install a
//! freshly built plan for every run you want to compare.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;

/// What kind of fault a directive injects, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The component errors out (as if it crashed) when it reaches `step`.
    /// Fires once per rank, so a restarted component survives the retry.
    KillAt {
        /// Transport step at which the component dies.
        step: u64,
    },
    /// The component silently stops making progress at `step`: it abandons
    /// its outputs without closing them, so peers see neither data nor EOS —
    /// the "peer disappeared without a goodbye" scenario. Fires once per
    /// rank.
    StallAt {
        /// Transport step at which the component goes quiet.
        step: u64,
    },
    /// The component suppresses its output chunk at `step` (metadata-only
    /// step), modelling a lossy link. Fires once per rank.
    DropChunkAt {
        /// Transport step whose payload is dropped.
        step: u64,
    },
    /// Every step sleeps a deterministic pseudo-random duration in
    /// `[0, max]`, derived from the plan seed, the component label, the
    /// rank, and the step — schedule perturbation without nondeterminism.
    DelayJitter {
        /// Upper bound on the injected per-step delay.
        max: Duration,
    },
}

#[derive(Debug, Clone)]
struct Directive {
    component: String,
    kind: FaultKind,
}

/// A discrete fault operation a run loop must apply this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Return an injected-fault error from the component.
    Kill,
    /// Abandon outputs and go quiet without closing them.
    Stall,
    /// Suppress this step's output payload.
    DropChunk,
}

/// The fault(s) to apply at one (component, rank, step) site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Sleep this long before doing anything else (zero when no jitter
    /// directive matches).
    pub delay: Duration,
    /// At most one discrete operation per site; `None` for a clean step.
    pub op: Option<FaultOp>,
}

impl InjectedFault {
    /// A site with no injected fault.
    pub fn none() -> InjectedFault {
        InjectedFault {
            delay: Duration::ZERO,
            op: None,
        }
    }
}

/// A seeded, deterministic schedule of injected faults.
///
/// ```
/// use sb_stream::faults::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::seeded(7)
///     .kill_at("magnitude", 2)
///     .delay_jitter("simulation", Duration::from_millis(2));
/// let first = plan.consult("magnitude", 0, 2).op;
/// let again = plan.consult("magnitude", 0, 2).op;
/// assert!(first.is_some() && again.is_none()); // kill fires once per rank
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    directives: Vec<Directive>,
    /// (directive index, rank) -> times fired. Discrete directives fire
    /// once per rank so supervision retries can succeed.
    fired: Mutex<HashMap<(usize, usize), u32>>,
}

impl FaultPlan {
    /// An empty plan whose delay jitter derives from `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            directives: Vec::new(),
            fired: Mutex::new(HashMap::new()),
        }
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds an arbitrary directive (builder style).
    pub fn with_fault(mut self, component: &str, kind: FaultKind) -> FaultPlan {
        self.directives.push(Directive {
            component: component.to_string(),
            kind,
        });
        self
    }

    /// Kill `component` when it reaches transport step `step`.
    pub fn kill_at(self, component: &str, step: u64) -> FaultPlan {
        self.with_fault(component, FaultKind::KillAt { step })
    }

    /// Stall `component` (quiet abandon, no EOS) at transport step `step`.
    pub fn stall_at(self, component: &str, step: u64) -> FaultPlan {
        self.with_fault(component, FaultKind::StallAt { step })
    }

    /// Drop `component`'s output payload at transport step `step`.
    pub fn drop_chunk_at(self, component: &str, step: u64) -> FaultPlan {
        self.with_fault(component, FaultKind::DropChunkAt { step })
    }

    /// Add seeded per-step delay jitter up to `max` to `component`.
    pub fn delay_jitter(self, component: &str, max: Duration) -> FaultPlan {
        self.with_fault(component, FaultKind::DelayJitter { max })
    }

    /// The fault(s) to apply at `(component, rank, step)`. Discrete
    /// directives (kill/stall/drop) fire once per rank; jitter applies to
    /// every step. At most one discrete op is returned (first match wins).
    pub fn consult(&self, component: &str, rank: usize, step: u64) -> InjectedFault {
        let mut out = InjectedFault::none();
        let mut fired = self.fired.lock();
        for (idx, d) in self.directives.iter().enumerate() {
            if d.component != component {
                continue;
            }
            match &d.kind {
                FaultKind::DelayJitter { max } => {
                    let nanos = max.as_nanos() as u64;
                    if nanos > 0 {
                        let h = splitmix(
                            self.seed
                                ^ str_hash(component)
                                ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                ^ step.wrapping_mul(0xbf58_476d_1ce4_e5b9),
                        );
                        out.delay += Duration::from_nanos(h % nanos);
                    }
                }
                discrete => {
                    let at = match discrete {
                        FaultKind::KillAt { step } => *step,
                        FaultKind::StallAt { step } => *step,
                        FaultKind::DropChunkAt { step } => *step,
                        FaultKind::DelayJitter { .. } => unreachable!(),
                    };
                    if step != at || out.op.is_some() {
                        continue;
                    }
                    let count = fired.entry((idx, rank)).or_insert(0);
                    if *count >= 1 {
                        continue;
                    }
                    *count += 1;
                    out.op = Some(match discrete {
                        FaultKind::KillAt { .. } => FaultOp::Kill,
                        FaultKind::StallAt { .. } => FaultOp::Stall,
                        FaultKind::DropChunkAt { .. } => FaultOp::DropChunk,
                        FaultKind::DelayJitter { .. } => unreachable!(),
                    });
                }
            }
        }
        out
    }
}

/// splitmix64 finalizer — a tiny, dependency-free bit mixer whose output is
/// fully determined by its input.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the label bytes; stable across runs and platforms (unlike
/// `DefaultHasher`, which is documented to be allowed to change).
fn str_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_faults_fire_once_per_rank() {
        let plan = FaultPlan::seeded(1).kill_at("t", 3);
        assert_eq!(plan.consult("t", 0, 2).op, None);
        assert_eq!(plan.consult("t", 0, 3).op, Some(FaultOp::Kill));
        assert_eq!(plan.consult("t", 0, 3).op, None, "second pass survives");
        assert_eq!(plan.consult("t", 1, 3).op, Some(FaultOp::Kill));
        assert_eq!(plan.consult("other", 0, 3).op, None);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let max = Duration::from_millis(5);
        let a = FaultPlan::seeded(42).delay_jitter("sim", max);
        let b = FaultPlan::seeded(42).delay_jitter("sim", max);
        for step in 0..32 {
            let da = a.consult("sim", 1, step).delay;
            let db = b.consult("sim", 1, step).delay;
            assert_eq!(da, db, "same seed, same delay");
            assert!(da < max);
        }
        let c = FaultPlan::seeded(43).delay_jitter("sim", max);
        let differs = (0..32).any(|s| c.consult("sim", 1, s).delay != a.consult("sim", 1, s).delay);
        assert!(differs, "different seeds should perturb differently");
    }

    #[test]
    fn stall_and_drop_map_to_their_ops() {
        let plan = FaultPlan::seeded(0).stall_at("a", 1).drop_chunk_at("b", 0);
        assert_eq!(plan.consult("a", 0, 1).op, Some(FaultOp::Stall));
        assert_eq!(plan.consult("b", 0, 0).op, Some(FaultOp::DropChunk));
    }
}
