//! # sb-stream — stream-based publish/subscribe transport
//!
//! FlexPath, the transport under the paper's SmartBlock components, provides
//! four behaviours the components lean on (§IV):
//!
//! 1. **Name-based connection** — a writer group and a reader group meet on
//!    a stream *name*; launch scripts wire workflows purely by matching
//!    output names to input names.
//! 2. **Launch-order independence** — readers block until the corresponding
//!    writers exist and have data; writers buffer until readers attach.
//! 3. **MxN redistribution** — M writer ranks and N reader ranks never need
//!    to agree on counts: each reader declares a bounding box of the global
//!    array and receives it assembled from every intersecting writer chunk.
//! 4. **Compute/I-O overlap** — a bounded writer-side queue lets a component
//!    proceed to its next timestep while downstream is still consuming the
//!    previous one; a rendezvous mode exists for the overlap ablation.
//!
//! This crate implements all four in process: ranks are threads (see
//! `sb-comm`), streams live in a shared [`StreamHub`], and payloads move as
//! [`sb_data::Chunk`]s. Because memory is shared, the "data exchange thread"
//! of FlexPath degenerates to a reader-side gather
//! ([`sb_data::region::copy_region`]) out of the committed step slots — the
//! queueing, blocking and backpressure semantics are preserved exactly.
//!
//! ## Step lifecycle
//!
//! Writers (every rank of the writer group, in lockstep):
//! `begin_step` → [`StreamWriter::put`] chunks → `end_step` → … → `close`.
//!
//! Readers (every rank of the reader group, in lockstep):
//! `begin_step` → inspect [`StreamReader::variables`]/[`StreamReader::meta`]
//! → [`StreamReader::get`] bounding boxes → `end_step` → … until
//! [`StepStatus::EndOfStream`].
//!
//! ## Failure semantics
//!
//! Blocking operations never panic on a stalled peer: they return a typed
//! [`StreamError`] — `Timeout` after the hub deadline, `PeerGone` when the
//! workflow supervisor poisons the streams during teardown. The [`faults`]
//! module provides a seeded, deterministic fault-injection plan
//! ([`faults::FaultPlan`]) that the chaos tests install on the hub.

mod error;
pub mod faults;
mod hub;
mod metrics;
mod reader;
pub mod shm;
mod stream;
pub mod tcp;
pub mod trace;
pub mod transport;
mod writer;

pub use error::{StreamError, StreamResult};
pub use faults::{FaultKind, FaultOp, FaultPlan, InjectedFault};
pub use hub::{StreamHub, DEFAULT_WAIT_TIMEOUT};
pub use metrics::StreamMetrics;
pub use reader::{StepStatus, StreamReader};
pub use sb_data::signal::{SignalBoard, SignalHook};
pub use sb_data::wire::Compression;
pub use shm::{ShmBroker, ShmOptions};
pub use stream::WriterOptions;
pub use tcp::{TcpBroker, TcpOptions, WireProtocol};
pub use trace::{EventKind, PhaseHistogram, Timeline, TraceConfig, TraceEvent, TraceSite, Tracer};
pub use transport::{
    ReaderConnection, ReaderEndpoint, StepContents, Transport, VarSlot, WriterConnection,
    WriterEndpoint,
};
pub use writer::StreamWriter;
