//! The shared-memory transport backend: the broker protocol of
//! [`crate::tcp`] carried over per-connection ring files instead of
//! sockets, for same-host workflows.
//!
//! A `shm://DIR` URL names a rendezvous directory (put it on a tmpfs such
//! as `/dev/shm` for page-cache-only traffic). One process runs a
//! [`ShmBroker`] in front of an ordinary in-proc [`StreamHub`]; every
//! other process calls [`StreamHub::connect`] with the same URL and gets
//! the exact same endpoint API — the whole client and broker-session
//! protocol is the TCP one, reached through the [`crate::tcp::FrameIo`] /
//! [`crate::tcp::Dialer`] seams, so goldens are byte-identical across
//! backends by construction.
//!
//! ## Connection fabric
//!
//! Each connection is one directory, atomically published by the client:
//!
//! ```text
//! DIR/broker.meta                  broker pid (rendezvous + liveness)
//! DIR/conn-<pid>-<n>/c2s.ring      client → broker byte ring
//! DIR/conn-<pid>-<n>/s2c.ring      broker → client byte ring
//! ```
//!
//! A ring file is a 64-byte header plus a circular byte region, crossed by
//! `read_at`/`write_at` through the (process-coherent) page cache — no
//! `unsafe`, no mmap. Each ring is strictly SPSC: the producer owns the
//! `tail` cursor, the consumer owns `head`, and both cursors are stored as
//! *mirrored pairs* written in a fixed order so the other side can reject
//! a torn read by re-reading until the copies agree. The u32
//! length-prefixed frames of the TCP backend are layered on top of the
//! byte stream unchanged; frames larger than the ring stream through in
//! chunks.
//!
//! ## Doorbell
//!
//! There is deliberately no futex or eventfd: waiting sides poll with a
//! yield-then-sleep backoff (tens of microseconds), which keeps the hot
//! path free of syscall-heavy wakeups and works on a single-core host.
//! Every waiter also watches its peer's pid; a killed process surfaces as
//! an I/O error within a few dozen milliseconds, which the broker session
//! treats as a noisy disconnect — blocked readers fail promptly with
//! [`StreamError::PeerGone`] instead of waiting out the hub timeout.

use std::collections::HashSet;
use std::ffi::OsString;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::StreamError;
use crate::hub::StreamHub;
use crate::tcp::{serve_session, Dialer, FrameIo, RelayTable, TcpOptions, TcpTransport, MAX_FRAME};
use crate::trace::Tracer;

const MAGIC: &[u8; 8] = b"SBSHMRG1";
const OFF_CAPACITY: u64 = 8;
/// Consumer cursor, mirrored pair (a at 16, b at 24).
const OFF_HEAD: u64 = 16;
/// Producer cursor, mirrored pair (a at 32, b at 40).
const OFF_TAIL: u64 = 32;
/// Producer sets this to 1 on clean close; the consumer then drains what
/// is left and reports end-of-connection.
const OFF_CLOSED: u64 = 48;
const HEADER_LEN: u64 = 64;

/// Name of the broker's rendezvous file inside the `shm://` directory.
const BROKER_META: &str = "broker.meta";

/// Tuning of the shared-memory backend.
///
/// Marked `#[non_exhaustive]`; construct via [`ShmOptions::default`] and
/// refine with the `with_*` setters.
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct ShmOptions {
    /// Data bytes per ring direction. Frames larger than this stream
    /// through in chunks, so the capacity bounds pipelining depth, not
    /// frame size.
    pub ring_capacity: usize,
    /// The protocol/deadline knobs shared with the TCP client path
    /// (connect budget, read grace, wire protocol, compression).
    pub wire: TcpOptions,
}

impl Default for ShmOptions {
    fn default() -> ShmOptions {
        ShmOptions {
            ring_capacity: 4 << 20,
            wire: TcpOptions::default(),
        }
    }
}

impl ShmOptions {
    /// Sets the per-direction ring capacity (builder style).
    pub fn with_ring_capacity(mut self, bytes: usize) -> ShmOptions {
        self.ring_capacity = bytes.max(4096);
        self
    }

    /// Sets the shared wire options (builder style).
    pub fn with_wire(mut self, wire: TcpOptions) -> ShmOptions {
        self.wire = wire;
        self
    }
}

/// Parses a `shm://DIR` URL into the rendezvous directory path.
pub fn parse_shm_url(url: &str) -> io::Result<PathBuf> {
    let rest = url.strip_prefix("shm://").ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("transport URL {url:?} must start with shm://"),
        )
    })?;
    if rest.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("transport URL {url:?} names no directory"),
        ));
    }
    Ok(PathBuf::from(rest))
}

/// Assembles the client-side transport for `shm://DIR`: the full TCP
/// client protocol over a ring-file dialer.
pub(crate) fn connect(
    url: &str,
    options: ShmOptions,
    wait_timeout_micros: Arc<AtomicU64>,
    tracer: Arc<Tracer>,
) -> io::Result<TcpTransport> {
    let dir = parse_shm_url(url)?;
    Ok(TcpTransport::with_dialer(
        url.to_string(),
        Box::new(ShmDialer { dir, options }),
        options.wire,
        wait_timeout_micros,
        tracer,
    ))
}

/// Whether `pid` still names a live process. A zombie counts as dead: an
/// exited-but-unreaped peer keeps its `/proc` entry (its parent may not
/// `wait()` until much later) but will never touch the ring again — the
/// shm analogue of the kernel closing a dead process's sockets. On a
/// system without `/proc` this degrades to "alive", leaving deadlines as
/// the only failure signal.
fn pid_alive(pid: u32) -> bool {
    let proc_dir = Path::new("/proc");
    if !proc_dir.exists() {
        return true;
    }
    match fs::read_to_string(proc_dir.join(pid.to_string()).join("stat")) {
        // The state char follows the parenthesized comm field, which may
        // itself contain parentheses — parse from the last ')'.
        Ok(stat) => !matches!(
            stat.rfind(')')
                .and_then(|i| stat[i + 1..].split_whitespace().next()),
            Some("Z") | Some("X") | Some("x")
        ),
        Err(e) => e.kind() != io::ErrorKind::NotFound,
    }
}

// ---- ring file ------------------------------------------------------------

/// Reads one mirrored u64 cursor, retrying until both copies agree. The
/// writer stores copy `a` before copy `b`, so disagreement means an update
/// is in flight. A peer that dies mid-update leaves the pair torn forever;
/// the retry cap turns that into an error instead of a spin.
fn read_pair(file: &File, off: u64) -> io::Result<u64> {
    for _ in 0..65536 {
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        file.read_exact_at(&mut a, off)?;
        file.read_exact_at(&mut b, off + 8)?;
        if a == b {
            return Ok(u64::from_le_bytes(a));
        }
        std::thread::yield_now();
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        "ring cursor stayed torn (peer died mid-update?)",
    ))
}

/// Publishes one mirrored u64 cursor: copy `a` first, then copy `b`.
fn write_pair(file: &File, off: u64, value: u64) -> io::Result<()> {
    let bytes = value.to_le_bytes();
    file.write_all_at(&bytes, off)?;
    file.write_all_at(&bytes, off + 8)
}

/// One direction's circular byte stream in a ring file.
struct Ring {
    file: File,
    capacity: u64,
}

impl Ring {
    fn create(path: &Path, capacity: u64) -> io::Result<Ring> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        // set_len zeroes the cursors and the closed flag. The data region
        // stays sparse on purpose: tmpfs faults pages in on first touch,
        // and eagerly zero-writing the whole region here was measured to
        // collapse under concurrent dials on a loaded single-core host
        // (bulk writes interleaved with pollers ran ~50x slower than the
        // same writes in isolation). Small rings keep the first-touch cost
        // proportional to what a connection actually uses.
        file.set_len(HEADER_LEN + capacity)?;
        file.write_all_at(MAGIC, 0)?;
        file.write_all_at(&capacity.to_le_bytes(), OFF_CAPACITY)?;
        Ok(Ring { file, capacity })
    }

    fn open(path: &Path) -> io::Result<Ring> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut magic = [0u8; 8];
        file.read_exact_at(&mut magic, 0)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a smartblock ring file", path.display()),
            ));
        }
        let mut cap = [0u8; 8];
        file.read_exact_at(&mut cap, OFF_CAPACITY)?;
        let capacity = u64::from_le_bytes(cap);
        if capacity == 0 || capacity > (1 << 40) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("ring file {} has capacity {capacity}", path.display()),
            ));
        }
        Ok(Ring { file, capacity })
    }

    fn head(&self) -> io::Result<u64> {
        read_pair(&self.file, OFF_HEAD)
    }

    fn set_head(&self, v: u64) -> io::Result<()> {
        write_pair(&self.file, OFF_HEAD, v)
    }

    fn tail(&self) -> io::Result<u64> {
        read_pair(&self.file, OFF_TAIL)
    }

    fn set_tail(&self, v: u64) -> io::Result<()> {
        write_pair(&self.file, OFF_TAIL, v)
    }

    fn closed(&self) -> io::Result<bool> {
        let mut flag = [0u8; 1];
        self.file.read_exact_at(&mut flag, OFF_CLOSED)?;
        Ok(flag[0] != 0)
    }

    fn set_closed(&self) -> io::Result<()> {
        self.file.write_all_at(&[1], OFF_CLOSED)
    }

    /// Writes `buf` into the circular data region at absolute stream
    /// position `pos` (the caller guarantees it fits the free space).
    fn write_data(&self, pos: u64, buf: &[u8]) -> io::Result<()> {
        let at = pos % self.capacity;
        let first = (self.capacity - at).min(buf.len() as u64) as usize;
        self.file.write_all_at(&buf[..first], HEADER_LEN + at)?;
        if first < buf.len() {
            self.file.write_all_at(&buf[first..], HEADER_LEN)?;
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes from absolute stream position `pos` (the
    /// caller guarantees they are available).
    fn read_data(&self, pos: u64, buf: &mut [u8]) -> io::Result<()> {
        let at = pos % self.capacity;
        let first = (self.capacity - at).min(buf.len() as u64) as usize;
        self.file
            .read_exact_at(&mut buf[..first], HEADER_LEN + at)?;
        if buf.len() > first {
            self.file.read_exact_at(&mut buf[first..], HEADER_LEN)?;
        }
        Ok(())
    }
}

// ---- framed channel --------------------------------------------------------

/// One connection's pair of rings, viewed from one side. Implements the
/// same [`FrameIo`] contract as a TCP socket: blocking framed send/receive
/// with a receive deadline and prompt errors on peer death.
struct ShmChannel {
    /// Ring this side produces into.
    tx: Ring,
    /// Ring this side consumes from.
    rx: Ring,
    /// Our producer cursor (authoritative local copy of `tx.tail`).
    tx_tail: u64,
    /// Our consumer cursor (authoritative local copy of `rx.head`).
    rx_head: u64,
    /// Last `tx.head` observed; refreshed only when space runs out.
    tx_head_cache: u64,
    /// Last `rx.tail` observed; refreshed only when data runs out.
    rx_tail_cache: u64,
    /// The process on the other side, watched while waiting.
    peer_pid: u32,
    recv_deadline: Option<Duration>,
}

impl ShmChannel {
    fn assemble(tx: Ring, rx: Ring, peer_pid: u32) -> io::Result<ShmChannel> {
        let tx_tail = tx.tail()?;
        let rx_head = rx.head()?;
        let tx_head_cache = tx.head()?;
        let rx_tail_cache = rx.tail()?;
        Ok(ShmChannel {
            tx,
            rx,
            tx_tail,
            rx_head,
            tx_head_cache,
            rx_tail_cache,
            peer_pid,
            recv_deadline: None,
        })
    }

    /// One wait iteration: yield first (cheap, and the right move on a
    /// single core), then settle into sleeps that escalate from 50 µs to
    /// an 800 µs cap; check the peer's pid periodically so a killed
    /// process fails the wait within ~25 ms.
    ///
    /// Both knees matter on a shared core. Yielding hands the core
    /// straight to a runnable peer, but a long yield phase across several
    /// pollers is a context-switch storm that starves the one thread doing
    /// real work. Constant 50 µs sleeps are as bad for bulk transfers: a
    /// multi-megabyte ring write gets preempted by every waiter's wakeup,
    /// measured as a >10x throughput collapse with three pollers on one
    /// core. Escalation keeps the hand-off latency of short sleeps while
    /// long waits decay into a once-a-millisecond heartbeat.
    fn pause(&self, iters: &mut u32) -> io::Result<()> {
        *iters = iters.wrapping_add(1);
        if *iters >= 64 && (*iters).is_multiple_of(32) && !pid_alive(self.peer_pid) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("peer process {} is gone", self.peer_pid),
            ));
        }
        if *iters < 64 {
            std::thread::yield_now();
        } else {
            let exp = ((*iters - 64) / 8).min(4);
            std::thread::sleep(Duration::from_micros(50 << exp));
        }
        Ok(())
    }

    /// Blocking bounded-buffer write of the whole of `buf`, in chunks as
    /// space frees (ring backpressure).
    fn send_bytes(&mut self, mut buf: &[u8]) -> io::Result<()> {
        let mut iters = 0u32;
        while !buf.is_empty() {
            let mut free = self.tx.capacity - (self.tx_tail - self.tx_head_cache);
            if free == 0 {
                self.tx_head_cache = self.tx.head()?;
                free = self.tx.capacity - (self.tx_tail - self.tx_head_cache);
            }
            if free == 0 {
                self.pause(&mut iters)?;
                continue;
            }
            let n = free.min(buf.len() as u64) as usize;
            self.tx.write_data(self.tx_tail, &buf[..n])?;
            self.tx_tail += n as u64;
            self.tx.set_tail(self.tx_tail)?;
            buf = &buf[n..];
        }
        Ok(())
    }

    /// Blocking read of exactly `buf.len()` bytes, honoring the receive
    /// deadline (expiry surfaces as `WouldBlock`, like a socket timeout)
    /// and the producer's close flag.
    fn recv_bytes(&mut self, buf: &mut [u8]) -> io::Result<()> {
        let limit = self.recv_deadline.map(|d| Instant::now() + d);
        let mut iters = 0u32;
        let mut filled = 0usize;
        while filled < buf.len() {
            let mut avail = self.rx_tail_cache - self.rx_head;
            if avail == 0 {
                self.rx_tail_cache = self.rx.tail()?;
                avail = self.rx_tail_cache - self.rx_head;
            }
            if avail == 0 {
                if self.rx.closed()? {
                    // Drain check once more: close happens after the final
                    // bytes are published.
                    self.rx_tail_cache = self.rx.tail()?;
                    if self.rx_tail_cache == self.rx_head {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed by peer",
                        ));
                    }
                    continue;
                }
                if let Some(limit) = limit {
                    if Instant::now() >= limit {
                        return Err(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            "ring read deadline expired",
                        ));
                    }
                }
                self.pause(&mut iters)?;
                continue;
            }
            let n = avail.min((buf.len() - filled) as u64) as usize;
            self.rx
                .read_data(self.rx_head, &mut buf[filled..filled + n])?;
            self.rx_head += n as u64;
            self.rx.set_head(self.rx_head)?;
            filled += n;
        }
        Ok(())
    }
}

impl FrameIo for ShmChannel {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<usize> {
        let header = (payload.len() as u32).to_le_bytes();
        if payload.len() <= 4096 {
            // Small frames go out in one publish: one cursor update instead
            // of two (control verbs and acks dominate frame *count*).
            let mut frame = Vec::with_capacity(4 + payload.len());
            frame.extend_from_slice(&header);
            frame.extend_from_slice(payload);
            self.send_bytes(&frame)?;
        } else {
            self.send_bytes(&header)?;
            self.send_bytes(payload)?;
        }
        Ok(4 + payload.len())
    }

    fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        let mut len = [0u8; 4];
        self.recv_bytes(&mut len)?;
        let len = u32::from_le_bytes(len);
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        self.recv_bytes(&mut payload)?;
        Ok(payload)
    }

    fn set_recv_deadline(&mut self, deadline: Option<Duration>) {
        self.recv_deadline = deadline;
    }
}

impl Drop for ShmChannel {
    fn drop(&mut self) {
        // A clean hang-up: the consumer drains what is left, then sees
        // end-of-connection — exactly a socket FIN.
        let _ = self.tx.set_closed();
    }
}

// ---- client side -----------------------------------------------------------

/// Per-process counter making connection directory names unique.
static CONN_COUNTER: AtomicU64 = AtomicU64::new(0);

struct ShmDialer {
    dir: PathBuf,
    options: ShmOptions,
}

impl ShmDialer {
    /// Waits for a live `broker.meta` within the connect budget and returns
    /// the broker's pid — the same launch-order independence as the TCP
    /// dial retry loop.
    fn broker_pid(&self, stream_name: &str) -> Result<u32, StreamError> {
        let deadline = Instant::now() + self.options.wire.connect_timeout;
        loop {
            if let Ok(text) = fs::read_to_string(self.dir.join(BROKER_META)) {
                if let Ok(pid) = text.trim().parse::<u32>() {
                    if pid_alive(pid) {
                        return Ok(pid);
                    }
                }
            }
            if Instant::now() >= deadline {
                return Err(StreamError::Timeout {
                    stream: stream_name.to_string(),
                    waiting_for: "broker connection".to_string(),
                    timeout: self.options.wire.connect_timeout,
                    detail: format!("no live broker at shm://{}", self.dir.display()),
                });
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Dialer for ShmDialer {
    fn backend(&self) -> &'static str {
        "shm"
    }

    fn dial(&self, stream_name: &str) -> Result<Box<dyn FrameIo>, StreamError> {
        let broker = self.broker_pid(stream_name)?;
        let setup = || -> io::Result<ShmChannel> {
            let name = format!(
                "conn-{}-{}",
                std::process::id(),
                CONN_COUNTER.fetch_add(1, Ordering::Relaxed)
            );
            // Create under a dot-name, then atomically rename: the broker's
            // accept scan only ever sees fully initialized connections.
            let tmp = self.dir.join(format!(".{name}"));
            let conn = self.dir.join(&name);
            fs::create_dir_all(&tmp)?;
            let capacity = self.options.ring_capacity as u64;
            let tx = Ring::create(&tmp.join("c2s.ring"), capacity)?;
            let rx = Ring::create(&tmp.join("s2c.ring"), capacity)?;
            fs::rename(&tmp, &conn)?;
            ShmChannel::assemble(tx, rx, broker)
        };
        match setup() {
            Ok(chan) => Ok(Box::new(chan)),
            Err(e) => Err(StreamError::PeerGone {
                stream: stream_name.to_string(),
                reason: format!("shm connection setup failed ({e})"),
            }),
        }
    }

    fn peer(&self) -> String {
        format!("shm://{}", self.dir.display())
    }
}

// ---- broker side -----------------------------------------------------------

/// Decrements the active-connection gauge even if the session panics.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The shared-memory broker: a directory-scan accept loop serving a local
/// in-proc [`StreamHub`] to same-host processes over ring files —
/// drop-in analogous to [`crate::tcp::TcpBroker`].
pub struct ShmBroker {
    hub: Arc<StreamHub>,
    dir: PathBuf,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    seen: Arc<AtomicUsize>,
    accept: Option<JoinHandle<()>>,
}

impl ShmBroker {
    /// Creates the rendezvous directory at `path` (an `shm://DIR` URL or a
    /// bare directory path) in front of a fresh in-proc hub.
    pub fn bind(path: &str) -> io::Result<ShmBroker> {
        Self::serve(StreamHub::new(), path)
    }

    /// Binds `path` in front of an existing in-proc hub — the broker
    /// process can then also run components of its own on `hub` directly.
    pub fn serve(hub: Arc<StreamHub>, path: &str) -> io::Result<ShmBroker> {
        if hub.backend() != "inproc" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "an ShmBroker must front an in-proc hub, not another remote transport",
            ));
        }
        let dir = match path.strip_prefix("shm://") {
            Some(_) => parse_shm_url(path)?,
            None => PathBuf::from(path),
        };
        if dir.as_os_str().is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "shm broker path names no directory",
            ));
        }
        fs::create_dir_all(&dir)?;
        let meta = dir.join(BROKER_META);
        if let Ok(text) = fs::read_to_string(&meta) {
            if let Ok(pid) = text.trim().parse::<u32>() {
                // A stale meta (dead pid, e.g. a crashed broker) is
                // reclaimed; a live one — including this process's own —
                // is refused like a bound socket address.
                if pid_alive(pid) {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("a live broker (pid {pid}) already serves {}", dir.display()),
                    ));
                }
            }
        }
        // Publish atomically so a dialing client never reads a partial pid.
        let tmp_meta = dir.join(".broker.meta.tmp");
        fs::write(&tmp_meta, format!("{}\n", std::process::id()))?;
        fs::rename(&tmp_meta, &meta)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let seen = Arc::new(AtomicUsize::new(0));
        let relays = Arc::new(RelayTable::default());
        let accept = {
            let hub = Arc::clone(&hub);
            let dir = dir.clone();
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            let seen = Arc::clone(&seen);
            std::thread::Builder::new()
                .name("sb-shm-broker".to_string())
                .spawn(move || {
                    let mut served: HashSet<OsString> = HashSet::new();
                    while !shutdown.load(Ordering::SeqCst) {
                        let mut current: HashSet<OsString> = HashSet::new();
                        if let Ok(entries) = fs::read_dir(&dir) {
                            for entry in entries.flatten() {
                                let name = entry.file_name();
                                if name.to_string_lossy().starts_with("conn-") {
                                    current.insert(name);
                                }
                            }
                        }
                        // Names of finished sessions leave the directory;
                        // forget them so the set stays bounded.
                        served.retain(|name| current.contains(name));
                        for name in current {
                            if !served.insert(name.clone()) {
                                continue;
                            }
                            let path = dir.join(&name);
                            let Ok(chan) = accept_conn(&path, &name) else {
                                // Unreadable or half-written: discard so it
                                // is not rescanned forever.
                                let _ = fs::remove_dir_all(&path);
                                continue;
                            };
                            active.fetch_add(1, Ordering::SeqCst);
                            seen.fetch_add(1, Ordering::SeqCst);
                            let guard = ConnGuard(Arc::clone(&active));
                            let hub = Arc::clone(&hub);
                            let relays = Arc::clone(&relays);
                            let _ = std::thread::Builder::new()
                                .name("sb-shm-session".to_string())
                                .spawn(move || {
                                    let _guard = guard;
                                    let mut chan = chan;
                                    let _ = serve_session(&hub, &relays, &mut chan, true);
                                    // Hang up (close flag) before removing
                                    // the directory; the client's open file
                                    // descriptors outlive the unlink.
                                    drop(chan);
                                    let _ = fs::remove_dir_all(&path);
                                });
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                })?
        };
        Ok(ShmBroker {
            hub,
            dir,
            shutdown,
            active,
            seen,
            accept: Some(accept),
        })
    }

    /// The rendezvous directory this broker scans.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The `shm://…` URL remote hubs connect to.
    pub fn url(&self) -> String {
        format!("shm://{}", self.dir.display())
    }

    /// The fronted in-proc hub.
    pub fn hub(&self) -> &Arc<StreamHub> {
        &self.hub
    }

    /// Currently open client connections (endpoints plus control channels).
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Total connections ever accepted. Monotonic, so unlike
    /// [`active_connections`](Self::active_connections) a poll loop cannot
    /// miss a client that connected and left between two samples.
    pub fn connections_seen(&self) -> usize {
        self.seen.load(Ordering::SeqCst)
    }

    /// Stops accepting connections; existing sessions run until their
    /// clients hang up.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let _ = fs::remove_file(self.dir.join(BROKER_META));
        // Gone only if no connection directories remain.
        let _ = fs::remove_dir(&self.dir);
    }
}

impl Drop for ShmBroker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Opens the broker-side view of a freshly published connection directory.
fn accept_conn(path: &Path, name: &OsString) -> io::Result<ShmChannel> {
    let pid = name
        .to_string_lossy()
        .strip_prefix("conn-")
        .and_then(|rest| rest.split('-').next().map(str::to_string))
        .and_then(|p| p.parse::<u32>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("connection directory {} has no pid", path.display()),
            )
        })?;
    // Mirror of the client's view: our tx is the client's rx.
    let rx = Ring::open(&path.join("c2s.ring"))?;
    let tx = Ring::open(&path.join("s2c.ring"))?;
    ShmChannel::assemble(tx, rx, pid)
}

// Tests live in `tests/` alongside the TCP conformance suite and in the
// module below.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StepStatus;
    use crate::stream::WriterOptions;
    use sb_data::{Buffer, Chunk, Region, Shape, Variable};

    /// A fresh rendezvous directory under the system temp dir (no tempfile
    /// crate in-tree); removed by the broker's shutdown when it empties.
    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sb-shm-{tag}-{}-{}",
            std::process::id(),
            CONN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn var(vals: Vec<f64>) -> Variable {
        Variable::new("x", Shape::linear("n", vals.len()), Buffer::F64(vals)).unwrap()
    }

    #[test]
    fn shm_round_trip_single_stream() {
        let dir = scratch_dir("rt");
        let broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
        let hub = StreamHub::connect(&broker.url()).unwrap();
        assert_eq!(hub.backend(), "shm");

        let mut w = hub.open_writer("t.fp", 0, 1, WriterOptions::default());
        for step in 0..3 {
            w.begin_step().unwrap();
            w.put_whole(var(vec![step as f64, 1.0, 2.0]));
            w.end_step().unwrap();
        }
        w.close();

        let mut r = hub.open_reader("t.fp", 0, 1);
        for step in 0..3 {
            assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(step));
            let v = r.get_whole("x").unwrap();
            assert_eq!(v.data.to_f64_vec(), vec![step as f64, 1.0, 2.0]);
            r.end_step();
        }
        assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);

        let metrics = hub.metrics("t.fp").unwrap();
        assert_eq!(metrics.steps_committed, 3);
        assert!(metrics.bytes_on_wire > 0, "wire bytes must be counted");
        assert_eq!(
            metrics.wire_shm_bytes, metrics.bytes_on_wire,
            "every hop byte crossed the shm fabric"
        );
    }

    #[test]
    fn shm_mxn_redistribution_across_connections() {
        let dir = scratch_dir("mxn");
        let broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
        let hub = StreamHub::connect(&broker.url()).unwrap();

        // Two writer ranks, each holding half the rows of a 4x3 array.
        let writers: Vec<_> = (0..2)
            .map(|rank| {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || {
                    let mut w = hub.open_writer("m.fp", rank, 2, WriterOptions::default());
                    let meta = sb_data::VariableMeta::new(
                        "grid",
                        Shape::of(&[("rows", 4), ("cols", 3)]),
                        sb_data::DType::F64,
                    );
                    let base = rank * 2;
                    let data: Vec<f64> = (0..6).map(|i| (base * 3 + i) as f64).collect();
                    let chunk = Chunk::new(
                        meta,
                        Region::new(vec![base, 0], vec![2, 3]),
                        Buffer::F64(data),
                    )
                    .unwrap();
                    w.begin_step().unwrap();
                    w.put(chunk);
                    w.end_step().unwrap();
                    w.close();
                })
            })
            .collect();

        let mut r = hub.open_reader("m.fp", 0, 1);
        assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
        let v = r.get_whole("grid").unwrap();
        assert_eq!(
            v.data.to_f64_vec(),
            (0..12).map(|i| i as f64).collect::<Vec<_>>()
        );
        r.end_step();
        assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn shm_noisy_disconnect_surfaces_peer_gone_promptly() {
        let dir = scratch_dir("kill");
        let broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
        let hub = StreamHub::connect(&broker.url()).unwrap();
        hub.set_wait_timeout(Duration::from_secs(30));

        let mut w = hub.open_writer("k.fp", 0, 1, WriterOptions::default());
        w.begin_step().unwrap();
        w.put_whole(var(vec![1.0]));
        w.end_step().unwrap();
        // Noisy terminator — the ring-channel analog of a SIGKILLed client
        // whose death the session notices. The reader must fail promptly,
        // not after the 30 s hub timeout.
        w.disconnect();

        let mut r = hub.open_reader("k.fp", 0, 1);
        assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
        r.end_step();
        let start = Instant::now();
        let err = r.begin_step().unwrap_err();
        assert!(
            matches!(err, StreamError::PeerGone { .. }),
            "expected PeerGone, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "PeerGone took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn shm_v1_and_compressed_v2_round_trip() {
        use crate::tcp::WireProtocol;
        use sb_data::wire::Compression;
        for (proto, comp) in [
            (WireProtocol::V1, Compression::None),
            (WireProtocol::V2, Compression::Lz),
        ] {
            let dir = scratch_dir("proto");
            let broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
            let options = TcpOptions::default()
                .with_protocol(proto)
                .with_compression(comp);
            let hub = StreamHub::connect_with(&broker.url(), options).unwrap();

            let mut w = hub.open_writer("p.fp", 0, 1, WriterOptions::default());
            // Compressible payload: long runs.
            let vals: Vec<f64> = (0..512).map(|i| (i / 64) as f64).collect();
            w.begin_step().unwrap();
            w.put_whole(var(vals.clone()));
            w.end_step().unwrap();
            w.close();

            let mut r = hub.open_reader("p.fp", 0, 1);
            assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
            assert_eq!(r.get_whole("x").unwrap().data.to_f64_vec(), vals);
            r.end_step();
            assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
        }
    }

    #[test]
    fn stale_broker_meta_is_replaced_and_double_bind_refused() {
        let dir = scratch_dir("meta");
        fs::create_dir_all(&dir).unwrap();
        // A stale meta from a crashed broker (dead pid) must not block.
        fs::write(dir.join(BROKER_META), "4294967294\n").unwrap();
        let broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
        // A second live broker on the same directory must be refused.
        let err = match ShmBroker::bind(dir.to_str().unwrap()) {
            Err(e) => e,
            Ok(_) => panic!("double bind must be refused"),
        };
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        drop(broker);
    }

    /// Throughput probe (`--ignored`; prints, asserts only delivery): raw
    /// ring frame pump between two threads, no wire protocol, no hub.
    /// Useful for separating ring-fabric cost from codec cost when bench
    /// numbers move. The first pass runs on cold (unfaulted) ring pages,
    /// the second on warm ones — expect an order-of-magnitude gap.
    #[test]
    #[ignore]
    fn ring_throughput_probe() {
        let dir = scratch_dir("tp");
        fs::create_dir_all(&dir).unwrap();
        let a2b = Ring::create(&dir.join("a2b.ring"), 32 << 20).unwrap();
        let b2a = Ring::create(&dir.join("b2a.ring"), 32 << 20).unwrap();
        let a2b2 = Ring::open(&dir.join("a2b.ring")).unwrap();
        let b2a2 = Ring::open(&dir.join("b2a.ring")).unwrap();
        let me = std::process::id();
        let mut side_a = ShmChannel::assemble(a2b, b2a, me).unwrap();
        let mut side_b = ShmChannel::assemble(b2a2, a2b2, me).unwrap();

        const STEPS: usize = 12;
        const LEN: usize = 6 << 20;
        let payload = vec![7u8; LEN];

        // Sequential (same thread, no contention): pure syscall + copy cost.
        let t0 = Instant::now();
        for _ in 0..STEPS {
            side_a.send_frame(&payload).unwrap();
            let got = side_b.recv_frame().unwrap();
            assert_eq!(got.len(), LEN);
        }
        let dt = t0.elapsed();
        eprintln!(
            "sequential: {:.2} GB/s, {:.2} ms/step",
            (STEPS * LEN) as f64 / dt.as_secs_f64() / 1e9,
            dt.as_secs_f64() * 1e3 / STEPS as f64
        );

        let t0 = Instant::now();
        let rx = std::thread::spawn(move || {
            let mut total = 0usize;
            for _ in 0..STEPS {
                total += side_b.recv_frame().unwrap().len();
                side_b.send_frame(b"ack").unwrap();
            }
            total
        });
        for _ in 0..STEPS {
            side_a.send_frame(&payload).unwrap();
            assert_eq!(side_a.recv_frame().unwrap(), b"ack");
        }
        let total = rx.join().unwrap();
        let dt = t0.elapsed();
        eprintln!(
            "ring pump: {total} bytes in {dt:?} = {:.2} GB/s, {:.2} ms/step",
            total as f64 / dt.as_secs_f64() / 1e9,
            dt.as_secs_f64() * 1e3 / STEPS as f64
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_shm_url_is_rejected() {
        assert!(parse_shm_url("tcp://127.0.0.1:4000").is_err());
        assert!(parse_shm_url("shm://").is_err());
        assert!(StreamHub::connect("shm://").is_err());
    }
}
