//! The stream registry where writer and reader groups rendezvous by name.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::faults::{FaultPlan, InjectedFault};
use crate::metrics::StreamMetrics;
use crate::reader::StreamReader;
use crate::stream::{Stream, WriterOptions};
use crate::trace::Tracer;
use crate::writer::StreamWriter;

/// Default time a blocked stream operation may wait before returning
/// [`crate::StreamError::Timeout`] with a deadlock diagnostic. Generous
/// enough for heavily oversubscribed CI machines, short enough that a
/// mis-wired workflow fails loudly.
pub const DEFAULT_WAIT_TIMEOUT: Duration = Duration::from_secs(120);

/// The per-workflow registry of named streams.
///
/// Components never hold references to each other — they only share a hub
/// and agree on stream names, exactly as FlexPath endpoints agree on contact
/// strings. Opening a writer or reader on a name that does not exist yet
/// creates the stream; the other side may attach at any later time
/// (launch-order independence).
///
/// ```
/// use sb_stream::{StreamHub, StepStatus, WriterOptions};
/// use sb_data::{Buffer, Shape, Variable};
///
/// let hub = StreamHub::new();
/// let mut w = hub.open_writer("demo.fp", 0, 1, WriterOptions::default());
/// w.begin_step().unwrap();
/// w.put_whole(Variable::new("x", Shape::linear("n", 3), Buffer::F64(vec![1.0, 2.0, 3.0])).unwrap());
/// w.end_step().unwrap();
/// w.close();
///
/// let mut r = hub.open_reader("demo.fp", 0, 1);
/// assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
/// assert_eq!(r.get_whole("x").unwrap().data.to_f64_vec(), vec![1.0, 2.0, 3.0]);
/// r.end_step();
/// assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
/// ```
pub struct StreamHub {
    streams: Mutex<HashMap<String, Arc<Stream>>>,
    /// Micros; shared with every stream so later overrides apply to
    /// streams that already exist.
    wait_timeout_micros: Arc<AtomicU64>,
    /// The installed fault-injection plan, if any (chaos testing).
    faults: Mutex<Option<Arc<FaultPlan>>>,
    /// The hub's tracer; disabled (and costing one relaxed atomic load per
    /// instrumentation site) until the workflow runtime arms it.
    tracer: Arc<Tracer>,
}

impl StreamHub {
    /// Creates a hub with the default deadlock timeout.
    pub fn new() -> Arc<StreamHub> {
        Self::with_timeout(DEFAULT_WAIT_TIMEOUT)
    }

    /// Creates a hub whose blocking operations fail after `wait_timeout`.
    pub fn with_timeout(wait_timeout: Duration) -> Arc<StreamHub> {
        Arc::new(StreamHub {
            streams: Mutex::new(HashMap::new()),
            wait_timeout_micros: Arc::new(AtomicU64::new(wait_timeout.as_micros() as u64)),
            faults: Mutex::new(None),
            tracer: Arc::new(Tracer::new()),
        })
    }

    /// This hub's tracer. Shared with every stream, so arming it makes
    /// streams that already exist start recording too.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The current deadlock timeout for blocking stream operations.
    pub fn wait_timeout(&self) -> Duration {
        Duration::from_micros(self.wait_timeout_micros.load(Ordering::Relaxed))
    }

    /// Overrides the deadlock timeout; applies immediately to every stream,
    /// including ones opened before the call.
    pub fn set_wait_timeout(&self, wait_timeout: Duration) {
        self.wait_timeout_micros
            .store(wait_timeout.as_micros() as u64, Ordering::Relaxed);
    }

    fn stream(&self, name: &str) -> Arc<Stream> {
        let mut streams = self.streams.lock();
        Arc::clone(streams.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Stream::new(
                name.to_string(),
                Arc::clone(&self.wait_timeout_micros),
                Arc::clone(&self.tracer),
            ))
        }))
    }

    /// Opens the writer side of `name` for rank `rank` of a `nranks`-rank
    /// writer group. Every rank of the group must call this with the same
    /// `nranks` and `options`.
    pub fn open_writer(
        &self,
        name: &str,
        rank: usize,
        nranks: usize,
        options: WriterOptions,
    ) -> StreamWriter {
        assert!(rank < nranks, "writer rank out of range");
        let stream = self.stream(name);
        let start = stream.register_writer(nranks, options);
        StreamWriter::new(stream, rank, nranks, start)
    }

    /// Opens the reader side of `name` for rank `rank` of a `nranks`-rank
    /// reader group (the anonymous `"default"` group).
    pub fn open_reader(&self, name: &str, rank: usize, nranks: usize) -> StreamReader {
        self.open_reader_grouped(name, "default", rank, nranks)
    }

    /// Opens the reader side of `name` for a *named* reader group.
    ///
    /// Several groups may subscribe to one stream independently — the ADIOS
    /// "write groups" capability the paper's future work wants for DAG
    /// workflows. Every group sees every step from the moment it attaches;
    /// a step is released (and writer buffer space freed) only when all
    /// subscribed groups have consumed it.
    pub fn open_reader_grouped(
        &self,
        name: &str,
        group: &str,
        rank: usize,
        nranks: usize,
    ) -> StreamReader {
        assert!(rank < nranks, "reader rank out of range");
        let stream = self.stream(name);
        let first_step = stream.register_reader(group, nranks);
        StreamReader::new(stream, group.to_string(), rank, nranks, first_step)
    }

    /// Names of all streams that have been opened on this hub.
    pub fn stream_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.streams.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// A snapshot of one stream's transfer counters.
    pub fn metrics(&self, name: &str) -> Option<StreamMetrics> {
        self.streams
            .lock()
            .get(name)
            .map(|s| s.counters.snapshot(name))
    }

    /// Snapshots of every stream, sorted by name.
    pub fn all_metrics(&self) -> Vec<StreamMetrics> {
        let streams = self.streams.lock();
        let mut out: Vec<StreamMetrics> = streams
            .iter()
            .map(|(name, s)| s.counters.snapshot(name))
            .collect();
        out.sort_by(|a, b| a.stream.cmp(&b.stream));
        out
    }

    // ---- fault injection -------------------------------------------------------

    /// Installs a fault-injection plan; component run loops consult it at
    /// the top of every step via [`StreamHub::fault_for`]. Replaces any
    /// previously installed plan.
    pub fn install_faults(&self, plan: FaultPlan) {
        *self.faults.lock() = Some(Arc::new(plan));
    }

    /// Removes the installed fault-injection plan.
    pub fn clear_faults(&self) {
        *self.faults.lock() = None;
    }

    /// The fault(s) to apply at `(component, rank, step)`; a no-op fault
    /// when no plan is installed.
    pub fn fault_for(&self, component: &str, rank: usize, step: u64) -> InjectedFault {
        let plan = self.faults.lock().clone();
        match plan {
            Some(plan) => plan.consult(component, rank, step),
            None => InjectedFault::none(),
        }
    }

    // ---- supervision hooks -----------------------------------------------------

    /// Poisons every stream: all blocked (and future blocking) operations
    /// return [`crate::StreamError::PeerGone`] with `reason`. The workflow
    /// supervisor calls this on abort so no component hangs on a dead peer.
    pub fn poison_all(&self, reason: &str) {
        for stream in self.streams.lock().values() {
            stream.poison(reason);
        }
    }

    /// Forces a clean end-of-stream on `name` (creating it if necessary):
    /// readers drain the remaining complete steps, then observe EOS. Used
    /// when degrading a failed producer.
    pub fn force_end_of_stream(&self, name: &str) {
        self.stream(name).force_end_of_stream();
    }

    /// Detaches reader group `group` of stream `name` (creating the stream
    /// if necessary) so it no longer holds steps back. Used when the
    /// consuming component was degraded or torn down.
    pub fn detach_reader_group(&self, name: &str, group: &str) {
        self.stream(name).detach_reader_group(group);
    }

    /// Prepares the given input subscriptions (stream, group) and output
    /// streams for a component restart: partial reader releases are
    /// discarded and writer registrations reopened so the new incarnation
    /// resumes exactly where the last complete step left off.
    pub fn prepare_restart(&self, inputs: &[(String, String)], outputs: &[String]) {
        for (stream, group) in inputs {
            self.stream(stream).reset_reader_group(group);
        }
        for stream in outputs {
            self.stream(stream).reattach_writer();
        }
    }
}
