//! The stream registry where writer and reader groups rendezvous by name.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sb_data::signal::SignalBoard;

use crate::faults::{FaultPlan, InjectedFault};
use crate::metrics::StreamMetrics;
use crate::reader::StreamReader;
use crate::stream::{StepContents, WriterOptions};
use crate::tcp::{TcpOptions, TcpTransport};
use crate::trace::Tracer;
use crate::transport::{InProcTransport, Transport};
use crate::writer::StreamWriter;

/// Default time a blocked stream operation may wait before returning
/// [`crate::StreamError::Timeout`] with a deadlock diagnostic. Generous
/// enough for heavily oversubscribed CI machines, short enough that a
/// mis-wired workflow fails loudly.
pub const DEFAULT_WAIT_TIMEOUT: Duration = Duration::from_secs(120);

/// The per-workflow registry of named streams.
///
/// Components never hold references to each other — they only share a hub
/// and agree on stream names, exactly as FlexPath endpoints agree on contact
/// strings. Opening a writer or reader on a name that does not exist yet
/// creates the stream; the other side may attach at any later time
/// (launch-order independence).
///
/// A hub fronts a [`Transport`] backend. [`StreamHub::new`] serves streams
/// in process (shared memory, `Arc`-moved steps); [`StreamHub::connect`]
/// serves the same API over TCP frames to a
/// [`TcpBroker`](crate::tcp::TcpBroker) in another process — components
/// cannot tell the difference.
///
/// ```
/// use sb_stream::{StreamHub, StepStatus, WriterOptions};
/// use sb_data::{Buffer, Shape, Variable};
///
/// let hub = StreamHub::new();
/// let mut w = hub.open_writer("demo.fp", 0, 1, WriterOptions::default());
/// w.begin_step().unwrap();
/// w.put_whole(Variable::new("x", Shape::linear("n", 3), Buffer::F64(vec![1.0, 2.0, 3.0])).unwrap());
/// w.end_step().unwrap();
/// w.close();
///
/// let mut r = hub.open_reader("demo.fp", 0, 1);
/// assert_eq!(r.begin_step().unwrap(), StepStatus::Ready(0));
/// assert_eq!(r.get_whole("x").unwrap().data.to_f64_vec(), vec![1.0, 2.0, 3.0]);
/// r.end_step();
/// assert_eq!(r.begin_step().unwrap(), StepStatus::EndOfStream);
/// ```
pub struct StreamHub {
    transport: Arc<dyn Transport>,
    /// Micros; shared with the transport (and, in proc, every stream) so
    /// later overrides apply to streams that already exist.
    wait_timeout_micros: Arc<AtomicU64>,
    /// The installed fault-injection plan, if any (chaos testing). Always
    /// process-local: each OS process consults its own plan.
    faults: Mutex<Option<Arc<FaultPlan>>>,
    /// The hub's tracer; disabled (and costing one relaxed atomic load per
    /// instrumentation site) until the workflow runtime arms it.
    tracer: Arc<Tracer>,
    /// The hub's scalar signal board; disarmed (one relaxed atomic load per
    /// publication) until the workflow runtime arms a trigger hook on it.
    signals: Arc<SignalBoard>,
}

impl StreamHub {
    /// Creates an in-proc hub with the default deadlock timeout.
    pub fn new() -> Arc<StreamHub> {
        Self::with_timeout(DEFAULT_WAIT_TIMEOUT)
    }

    /// Creates an in-proc hub whose blocking operations fail after
    /// `wait_timeout`.
    pub fn with_timeout(wait_timeout: Duration) -> Arc<StreamHub> {
        let wait = Arc::new(AtomicU64::new(wait_timeout.as_micros() as u64));
        let tracer = Arc::new(Tracer::new());
        let transport = Arc::new(InProcTransport::new(Arc::clone(&wait), Arc::clone(&tracer)));
        Self::assemble(transport, wait, tracer)
    }

    /// Creates a hub over a remote broker at `url` — `tcp://host:port` for
    /// the socket backend, `shm://DIR` for the same-host shared-memory
    /// backend — with default [`TcpOptions`] and the default deadlock
    /// timeout.
    ///
    /// The URL is validated and resolved here; actual connections are
    /// dialed when endpoints open, so the broker may come up later (within
    /// the connect timeout) — launch-order independence across processes.
    pub fn connect(url: &str) -> std::io::Result<Arc<StreamHub>> {
        Self::connect_with(url, TcpOptions::default())
    }

    /// [`StreamHub::connect`] with explicit connect/read timeout options.
    /// `shm://` URLs take the default ring capacity; use
    /// [`StreamHub::connect_shm`] to tune it.
    pub fn connect_with(url: &str, options: TcpOptions) -> std::io::Result<Arc<StreamHub>> {
        if url.starts_with("shm://") {
            return Self::connect_shm(url, crate::shm::ShmOptions::default().with_wire(options));
        }
        let wait = Arc::new(AtomicU64::new(DEFAULT_WAIT_TIMEOUT.as_micros() as u64));
        let tracer = Arc::new(Tracer::new());
        let transport = Arc::new(TcpTransport::connect(
            url,
            options,
            Arc::clone(&wait),
            Arc::clone(&tracer),
        )?);
        Ok(Self::assemble(transport, wait, tracer))
    }

    /// Creates a hub over the shared-memory backend at `url` (`shm://DIR`)
    /// with explicit [`crate::shm::ShmOptions`].
    pub fn connect_shm(
        url: &str,
        options: crate::shm::ShmOptions,
    ) -> std::io::Result<Arc<StreamHub>> {
        let wait = Arc::new(AtomicU64::new(DEFAULT_WAIT_TIMEOUT.as_micros() as u64));
        let tracer = Arc::new(Tracer::new());
        let transport = Arc::new(crate::shm::connect(
            url,
            options,
            Arc::clone(&wait),
            Arc::clone(&tracer),
        )?);
        Ok(Self::assemble(transport, wait, tracer))
    }

    /// Creates a hub over a custom [`Transport`] backend.
    pub fn with_transport(transport: Arc<dyn Transport>) -> Arc<StreamHub> {
        let wait = Arc::new(AtomicU64::new(DEFAULT_WAIT_TIMEOUT.as_micros() as u64));
        Self::assemble(transport, wait, Arc::new(Tracer::new()))
    }

    fn assemble(
        transport: Arc<dyn Transport>,
        wait_timeout_micros: Arc<AtomicU64>,
        tracer: Arc<Tracer>,
    ) -> Arc<StreamHub> {
        Arc::new(StreamHub {
            transport,
            wait_timeout_micros,
            faults: Mutex::new(None),
            tracer,
            signals: Arc::new(SignalBoard::new()),
        })
    }

    /// Short name of the transport backend behind this hub.
    pub fn backend(&self) -> &'static str {
        self.transport.backend()
    }

    /// The transport behind this hub (the TCP broker serves a hub's
    /// endpoints directly from here).
    pub(crate) fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// This hub's tracer. Shared with every stream, so arming it makes
    /// streams that already exist start recording too.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// This hub's scalar signal board. Components publish per-step scalars
    /// here (histogram stats, wait/compute ratios); the workflow runtime
    /// arms a hook on it when reactive triggers are declared. Publications
    /// cost one relaxed atomic load while nothing is armed.
    pub fn signals(&self) -> &Arc<SignalBoard> {
        &self.signals
    }

    /// A point-in-time copy of `name`'s currently buffered committed steps
    /// (`(step, contents)` pairs, step order), without disturbing readers
    /// or writers. Returns `None` when the stream does not exist on this
    /// hub or the backend cannot snapshot (the TCP client side has no
    /// request/response control path — snapshot on the broker's hub).
    pub fn snapshot_stream(&self, name: &str) -> Option<Vec<(u64, StepContents)>> {
        self.transport.snapshot_stream(name)
    }

    /// The current deadlock timeout for blocking stream operations.
    pub fn wait_timeout(&self) -> Duration {
        Duration::from_micros(self.wait_timeout_micros.load(Ordering::Relaxed))
    }

    /// Overrides the deadlock timeout; applies immediately to every stream,
    /// including ones opened before the call. On a TCP hub the override is
    /// also forwarded to the broker, where the blocking actually happens.
    pub fn set_wait_timeout(&self, wait_timeout: Duration) {
        self.wait_timeout_micros
            .store(wait_timeout.as_micros() as u64, Ordering::Relaxed);
        self.transport.set_wait_timeout(wait_timeout);
    }

    /// Opens the writer side of `name` for rank `rank` of a `nranks`-rank
    /// writer group. Every rank of the group must call this with the same
    /// `nranks` and `options`.
    pub fn open_writer(
        &self,
        name: &str,
        rank: usize,
        nranks: usize,
        options: WriterOptions,
    ) -> StreamWriter {
        assert!(rank < nranks, "writer rank out of range");
        let conn = self.transport.open_writer(name, rank, nranks, options);
        StreamWriter::new(conn, rank, nranks)
    }

    /// Opens the reader side of `name` for rank `rank` of a `nranks`-rank
    /// reader group (the anonymous `"default"` group).
    pub fn open_reader(&self, name: &str, rank: usize, nranks: usize) -> StreamReader {
        self.open_reader_grouped(name, "default", rank, nranks)
    }

    /// Opens the reader side of `name` for a *named* reader group.
    ///
    /// Several groups may subscribe to one stream independently — the ADIOS
    /// "write groups" capability the paper's future work wants for DAG
    /// workflows. Every group sees every step from the moment it attaches;
    /// a step is released (and writer buffer space freed) only when all
    /// subscribed groups have consumed it.
    pub fn open_reader_grouped(
        &self,
        name: &str,
        group: &str,
        rank: usize,
        nranks: usize,
    ) -> StreamReader {
        assert!(rank < nranks, "reader rank out of range");
        let conn = self.transport.open_reader(name, group, rank, nranks);
        StreamReader::new(conn, group.to_string(), rank, nranks)
    }

    /// Names of all streams that have been opened on this hub.
    pub fn stream_names(&self) -> Vec<String> {
        self.transport.stream_names()
    }

    /// A snapshot of one stream's transfer counters.
    pub fn metrics(&self, name: &str) -> Option<StreamMetrics> {
        self.transport.metrics(name)
    }

    /// Snapshots of every stream, sorted by name. On a TCP hub this merges
    /// this process's local read-side counters into the broker's
    /// authoritative snapshot.
    pub fn all_metrics(&self) -> Vec<StreamMetrics> {
        self.transport.all_metrics()
    }

    // ---- fault injection -------------------------------------------------------

    /// Installs a fault-injection plan; component run loops consult it at
    /// the top of every step via [`StreamHub::fault_for`]. Replaces any
    /// previously installed plan.
    pub fn install_faults(&self, plan: FaultPlan) {
        *self.faults.lock() = Some(Arc::new(plan));
    }

    /// Removes the installed fault-injection plan.
    pub fn clear_faults(&self) {
        *self.faults.lock() = None;
    }

    /// The fault(s) to apply at `(component, rank, step)`; a no-op fault
    /// when no plan is installed.
    pub fn fault_for(&self, component: &str, rank: usize, step: u64) -> InjectedFault {
        let plan = self.faults.lock().clone();
        match plan {
            Some(plan) => plan.consult(component, rank, step),
            None => InjectedFault::none(),
        }
    }

    // ---- supervision hooks -----------------------------------------------------

    /// Poisons every stream: all blocked (and future blocking) operations
    /// return [`crate::StreamError::PeerGone`] with `reason`. The workflow
    /// supervisor calls this on abort so no component hangs on a dead peer.
    pub fn poison_all(&self, reason: &str) {
        self.transport.poison_all(reason);
    }

    /// Forces a clean end-of-stream on `name` (creating it if necessary):
    /// readers drain the remaining complete steps, then observe EOS. Used
    /// when degrading a failed producer.
    pub fn force_end_of_stream(&self, name: &str) {
        self.transport.force_end_of_stream(name);
    }

    /// Detaches reader group `group` of stream `name` (creating the stream
    /// if necessary) so it no longer holds steps back. Used when the
    /// consuming component was degraded or torn down.
    pub fn detach_reader_group(&self, name: &str, group: &str) {
        self.transport.detach_reader_group(name, group);
    }

    /// Prepares the given input subscriptions (stream, group) and output
    /// streams for a component restart: partial reader releases are
    /// discarded and writer registrations reopened so the new incarnation
    /// resumes exactly where the last complete step left off.
    pub fn prepare_restart(&self, inputs: &[(String, String)], outputs: &[String]) {
        self.transport.prepare_restart(inputs, outputs);
    }
}
