//! The paper's GTCP workflow (Fig. 6): a toroidal plasma simulation whose
//! 3-d output — `toroidal slices × grid points × 7 properties` — is
//! reduced, by name, to a histogram of the perpendicular pressure over the
//! whole torus.
//!
//! The pipeline needs *two* Dim-Reduce instances because Histogram expects
//! 1-d data: `[T, G, 1] → [T, G] → [T·G]` (§III-F of the paper).
//!
//! Run with: `cargo run --release -p sb-examples --bin gtcp_pressure`
//!
//! Set `SB_TRACE=1` to record the step timeline: the run then prints a
//! text waterfall of where each component's time went and writes
//! `TRACE_gtcp_pressure.json` for Perfetto / `chrome://tracing`.

use sb_examples::render_histogram;
use smartblock::prelude::*;
use smartblock::workflows::{gtcp_workflow, PresetScale};

fn main() {
    let scale = PresetScale {
        sim_ranks: 4,
        analysis_ranks: vec![3, 2, 2, 1],
        io_steps: 3,
        substeps: 20,
        bins: 20,
        ..PresetScale::default()
    }
    .size("slices", 24)
    .size("points", 48);

    println!("assembling: gtcp -> select(P_perp) -> dim-reduce -> dim-reduce -> histogram");
    let (workflow, results) = gtcp_workflow(&scale);
    println!("components: {:?}", workflow.labels());

    let report = workflow
        .run_with(RunOptions::default())
        .expect("workflow run");

    for r in results.lock().iter() {
        println!("\n{}", render_histogram("perpendicular pressure", r));
    }

    println!("end-to-end time: {:.3}s", report.elapsed.as_secs_f64());
    println!("streams:");
    for s in &report.streams {
        println!(
            "  {:<12} steps={} written={}B read={}B",
            s.stream, s.steps_committed, s.bytes_written, s.bytes_read
        );
    }

    // With SB_TRACE=1 the runtime records the step timeline; show the
    // terminal waterfall and drop the Chrome-trace export next to the cwd.
    if !report.timeline.is_empty() {
        println!("\n{}", report.timeline.waterfall());
        let path = "TRACE_gtcp_pressure.json";
        std::fs::write(path, report.timeline.chrome_trace_json()).expect("write trace JSON");
        println!("wrote {path} — load it in Perfetto or chrome://tracing");
    }
}
