//! Multi-process deployment: the GROMACS workflow (Fig. 7) split across two
//! OS processes connected by the TCP transport backend.
//!
//! The parent process serves a [`TcpBroker`] and runs the simulation on the
//! broker's own hub; it then re-launches *itself* with `--role analysis` as
//! a genuinely separate OS process, which connects to `tcp://…` and runs
//! Magnitude → Histogram. The two processes share nothing but the broker
//! URL — the same name-based rendezvous as the in-proc hub, across a
//! process boundary.
//!
//! Run with: `cargo run --release -p sb-examples --bin multi_process`
//!
//! The equivalent two-terminal deployment with `sb-run` (see the README):
//!
//! ```text
//! terminal 1:  sb-run --script wf.sb --serve 127.0.0.1:7654 --components gromacs
//! terminal 2:  sb-run --script wf.sb --connect tcp://127.0.0.1:7654 \
//!                     --components magnitude,histogram
//! ```

use std::process::Command;
use std::sync::Arc;

use sb_examples::render_histogram;
use sb_stream::tcp::TcpBroker;
use smartblock::distributed::{plan_script, run_components};
use smartblock::prelude::*;

const SCRIPT: &str = r#"
    aprun -n 2 gromacs chains=6 len=5 steps=4 interval=5 &
    aprun -n 2 magnitude gromacs.fp coords gmag.fp radii &
    aprun -n 1 histogram gmag.fp radii 12 &
    wait
"#;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--role") {
        analysis_process();
        return;
    }

    let (plan, _) = plan_script(SCRIPT).expect("script parses");
    let mut broker = TcpBroker::bind("127.0.0.1:0").expect("bind broker");
    println!("parent: serving {}", broker.url());

    // The analysis side: this same binary, as a real child OS process.
    let mut child = Command::new(std::env::current_exe().expect("own path"))
        .args(["--role", "analysis", "--url", &broker.url()])
        .spawn()
        .expect("spawn analysis process");

    // The simulation side, on the broker's own in-proc hub.
    let hub = Arc::clone(broker.hub());
    let report = run_components(hub, &plan, &["gromacs".to_string()], RunOptions::new())
        .expect("simulation side");
    println!(
        "parent: gromacs produced {} steps",
        report
            .component("gromacs")
            .expect("gromacs ran")
            .stats
            .steps
    );

    let status = child.wait().expect("await analysis process");
    assert!(status.success(), "analysis process failed: {status}");
    broker.shutdown();
    println!("parent: done");
}

fn analysis_process() {
    let args: Vec<String> = std::env::args().collect();
    let url = args
        .iter()
        .position(|a| a == "--url")
        .and_then(|i| args.get(i + 1))
        .expect("--url tcp://host:port");
    let (plan, _) = plan_script(SCRIPT).expect("script parses");
    let hub = StreamHub::connect(url).expect("connect to broker");
    println!("child:  connected to {url} (backend {})", hub.backend());

    let select = ["magnitude".to_string(), "histogram".to_string()];
    let mut hist = Some(Histogram::new(("gmag.fp", "radii"), 12));
    let results = hist.as_ref().expect("just built").results_handle();
    // Build the slice by hand so we can hold the histogram handle; sb-run
    // does the same thing generically via `partial_workflow`.
    let mut wf = Workflow::with_hub(hub);
    for p in plan.iter().filter(|p| select.contains(&p.label)) {
        if p.label == "histogram" {
            wf.add_labeled("histogram", p.nranks, hist.take().expect("added once"));
        } else {
            wf.add_labeled(
                p.label.clone(),
                p.nranks,
                smartblock::workflows::instantiate_entry(&p.entry),
            );
        }
    }
    wf.run_with(RunOptions::new().with_validation(Validation::Skip))
        .expect("analysis side");

    for r in results.lock().iter() {
        println!("\n{}", render_histogram("atom radii (over TCP)", r));
    }
}
