//! Workflows from launch scripts — the paper's Fig. 8 deployment model.
//!
//! The whole point of SmartBlock is that workflows are assembled *without
//! recompilation*: a job script names components, process counts, and the
//! stream/array names that wire them together. This example parses an
//! `aprun`-style script (the GTCP pipeline of Fig. 6, written in the Fig. 8
//! grammar) and runs it.
//!
//! Run with: `cargo run --release -p sb-examples --bin launch_script`

use smartblock::prelude::*;
use smartblock::workflows::script_to_workflow;

const SCRIPT: &str = r#"
# GTCP pressure-histogram workflow (paper Figs. 4 and 6), assembled purely
# from run-time arguments; the simulation's stream name comes from its
# ADIOS-style group config.
aprun -n 4 gtcp slices=16 points=32 steps=3 interval=15 &
aprun -n 3 select gtcp.fp plasma 2 psel.fp pperp P_perp &
aprun -n 2 dim-reduce psel.fp pperp 2 1 dr1.fp flat2 &
aprun -n 2 dim-reduce dr1.fp flat2 0 1 dr2.fp flat1 &
aprun -n 1 histogram dr2.fp flat1 20 /tmp/gtcp_pressure_hist.txt &
wait
"#;

fn main() {
    println!("launch script:\n{SCRIPT}");
    let workflow = script_to_workflow(SCRIPT).expect("script parses");
    println!("parsed components: {:?}", workflow.labels());

    let report = workflow
        .run_with(RunOptions::default())
        .expect("workflow run");

    println!("\nend-to-end time: {:.3}s", report.elapsed.as_secs_f64());
    for c in &report.components {
        println!(
            "  {:<14} ranks={:<2} steps={:<2} in={:>9}B out={:>9}B",
            c.label, c.nranks, c.stats.steps, c.stats.bytes_in, c.stats.bytes_out
        );
    }
    let text = std::fs::read_to_string("/tmp/gtcp_pressure_hist.txt").expect("histogram file");
    println!("\nhistogram file written by rank 0 of the endpoint component:");
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", text.lines().count());
}
