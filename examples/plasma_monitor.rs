//! A richer analysis DAG built entirely from generic components, using the
//! extension library (Transpose, Reduce, Threshold) and multi-subscriber
//! streams — no Fork, no data duplication:
//!
//! ```text
//!                      ┌─[group "profile"]─> transpose ─> reduce(mean) ──┐
//! gtcp ── gtcp.fp ─────┤                                                 ├─> printed
//!                      └─[group "alarms"]──> select(P_perp) ─> 2x dim-reduce
//!                                            ─> threshold(hot cells) ────┘
//! ```
//!
//! Branch 1 computes the mean poloidal profile of every plasma property
//! (gridpoints-major after the transpose). Branch 2 reproduces the paper's
//! flattening pipeline but ends in a Threshold that reports which grid
//! cells exceed a pressure alarm level, with their global indices.
//!
//! Run with: `cargo run --release -p sb-examples --bin plasma_monitor`

use sb_stream::WriterOptions;
use smartblock::launch::SimCode;
use smartblock::prelude::*;
use smartblock::workflows::Simulation;

fn main() {
    let mut wf = Workflow::new();
    wf.add(
        3,
        Simulation::new(SimCode::Gtcp)
            .param("slices", 16)
            .param("points", 24)
            .param("steps", 3)
            .param("interval", 10)
            // Two branches subscribe to the raw stream.
            .with_writer_options(WriterOptions::default().with_reader_groups(2)),
    );

    // Branch 1: per-property poloidal profile.
    // [slices, points, props] -> [props, points, slices] -> mean over slices.
    wf.add(
        2,
        Transpose::new(
            ("gtcp.fp", "plasma"),
            vec![2, 1, 0],
            ("byprop.fp", "plasma"),
        )
        .with_reader_group("profile"),
    );
    wf.add(
        2,
        Reduce::new(
            ("byprop.fp", "plasma"),
            2,
            ReduceOp::Mean,
            ("profile.fp", "mean"),
        ),
    );
    wf.add_sink("print-profile", 1, "profile.fp", |step, vars| {
        let v = &vars["mean"];
        // Row 5 is P_perp (see sb_sims::gtcp::GTCP_PROPERTIES).
        let points = v.shape.size(1);
        let row: Vec<f64> = (0..points).map(|j| v.get(&[5, j])).collect();
        let lo = row.iter().cloned().fold(f64::MAX, f64::min);
        let hi = row.iter().cloned().fold(f64::MIN, f64::max);
        println!("step {step}: mean P_perp poloidal profile in [{lo:.4}, {hi:.4}]");
    });

    // Branch 2: the paper's flattening pipeline ending in an alarm filter.
    wf.add(
        2,
        Select::new(("gtcp.fp", "plasma"), 2, ["P_perp"], ("psel.fp", "pperp"))
            .with_reader_group("alarms"),
    );
    wf.add(
        2,
        DimReduce::new(("psel.fp", "pperp"), 2, 1, ("dr1.fp", "f2")),
    );
    wf.add(2, DimReduce::new(("dr1.fp", "f2"), 0, 1, ("dr2.fp", "f1")));
    wf.add(
        2,
        Threshold::new(
            ("dr2.fp", "f1"),
            Predicate::GreaterThan(1.15),
            ("hot.fp", "cells"),
        ),
    );
    wf.add_sink("print-alarms", 1, "hot.fp", |step, vars| {
        let n = vars["cells"].shape.total_len();
        let first: Vec<u64> = vars["cells_indices"]
            .data
            .to_f64_vec()
            .iter()
            .take(5)
            .map(|&x| x as u64)
            .collect();
        println!("step {step}: {n} grid cells above the pressure alarm (first: {first:?})");
    });

    // Static wiring check before spending any compute.
    let issues = wf.validate();
    assert!(issues.is_empty(), "wiring problems: {issues:?}");

    let report = wf.run_with(RunOptions::default()).expect("workflow run");
    println!(
        "\nmonitor DAG: {} components, {} streams, {:.3}s end to end",
        report.components.len(),
        report.streams.len(),
        report.elapsed.as_secs_f64()
    );
}
