//! A DAG-shaped workflow via the Fork component (paper §VI future work).
//!
//! One GROMACS coordinate stream fans out to two independent analysis
//! branches:
//!
//! ```text
//!                    ┌─> magnitude ─> histogram   (spread of the atoms)
//! gromacs ─> fork ───┤
//!                    └─> stats                    (min/max/mean/std of x,y,z)
//! ```
//!
//! Run with: `cargo run --release -p sb-examples --bin dag_fork`

use sb_examples::render_histogram;
use smartblock::launch::SimCode;
use smartblock::prelude::*;
use smartblock::workflows::Simulation;

fn main() {
    let mut wf = Workflow::new();
    wf.add(
        2,
        Simulation::new(SimCode::Gromacs)
            .param("chains", 24)
            .param("len", 12)
            .param("steps", 4)
            .param("interval", 25),
    );
    wf.add(2, Fork::new("gromacs.fp", ["branch-a.fp", "branch-b.fp"]));

    // Branch A: the paper's spread histogram.
    wf.add(
        2,
        Magnitude::new(("branch-a.fp", "coords"), ("radii.fp", "r")),
    );
    let hist = Histogram::new(("radii.fp", "r"), 12);
    let hist_results = hist.results_handle();
    wf.add(1, hist);

    // Branch B: summary statistics straight off the coordinates.
    wf.add(
        2,
        Stats::new(("branch-b.fp", "coords"), ("summary.fp", "s")),
    );
    wf.add_sink("print-stats", 1, "summary.fp", |step, vars| {
        if let Some((min, max, mean, std, count)) =
            smartblock::stats::parse_stats_output(&vars["s"])
        {
            println!(
                "stats step {step}: count={count} min={min:.3} max={max:.3} mean={mean:.3} std={std:.3}"
            );
        }
    });

    let report = wf.run_with(RunOptions::default()).expect("workflow run");
    if let Some(last) = hist_results.lock().last() {
        println!("\n{}", render_histogram("spread (branch A)", last));
    }
    println!(
        "DAG ran {} components in {:.3}s",
        report.components.len(),
        report.elapsed.as_secs_f64()
    );
}
