//! Storage-decoupled workflows (paper §VI future work): breaking the
//! "all components run simultaneously" dependency with file endpoints.
//!
//! Phase 1 runs the simulation alone and drains its stream to a container
//! file. Phase 2 — which could run hours later, on different resources —
//! replays the file as a stream and runs the analysis pipeline on it. The
//! analysis components are *unchanged*: they cannot tell a replayed stream
//! from a live one.
//!
//! Run with: `cargo run --release -p sb-examples --bin file_decoupled`

use sb_examples::render_histogram;
use smartblock::launch::SimCode;
use smartblock::prelude::*;
use smartblock::workflows::Simulation;

fn main() {
    let container = std::env::temp_dir().join("lammps_crack_steps.sbc");

    // ---- Phase 1: simulate now, persist the stream -------------------------
    println!("phase 1: lammps -> file-write {container:?}");
    let mut phase1 = Workflow::new();
    phase1.add(
        4,
        Simulation::new(SimCode::Lammps)
            .param("nx", 32)
            .param("ny", 32)
            .param("steps", 3)
            .param("interval", 10),
    );
    phase1.add(1, FileWrite::new("dump.custom.fp", &container));
    let r1 = phase1.run_with(RunOptions::default()).expect("phase 1");
    println!(
        "  persisted {} steps in {:.3}s\n",
        r1.component("file-write").unwrap().stats.steps,
        r1.elapsed.as_secs_f64()
    );

    // ---- Phase 2: analyze later, replaying the file as a stream ------------
    println!("phase 2: file-read -> select -> magnitude -> histogram");
    let mut phase2 = Workflow::new();
    phase2.add(2, FileRead::new(&container, "replay.fp"));
    phase2.add(
        2,
        Select::new(
            ("replay.fp", "atoms"),
            1,
            ["vx", "vy", "vz"],
            ("sel.fp", "vel"),
        ),
    );
    phase2.add(2, Magnitude::new(("sel.fp", "vel"), ("mag.fp", "speed")));
    let hist = Histogram::new(("mag.fp", "speed"), 16);
    let results = hist.results_handle();
    phase2.add(1, hist);
    let r2 = phase2.run_with(RunOptions::default()).expect("phase 2");

    for r in results.lock().iter() {
        println!("\n{}", render_histogram("replayed velocity magnitudes", r));
    }
    println!("phase 2 time: {:.3}s", r2.elapsed.as_secs_f64());
    std::fs::remove_file(&container).ok();
}
