//! Shared helpers for the SmartBlock example binaries.
//!
//! Each example is a standalone binary (see `Cargo.toml` `[[bin]]`
//! entries); this small library keeps their output formatting consistent.

use smartblock::HistogramResult;

/// Renders a histogram as an ASCII bar chart, the way the paper's endpoint
/// component presents "a human-readable reduction of data".
pub fn render_histogram(title: &str, r: &HistogramResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{title} — step {}: {} values in [{:.4}, {:.4}]\n",
        r.step,
        r.total(),
        r.min,
        r.max
    ));
    let peak = r.counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in r.counts.iter().enumerate() {
        let (lo, hi) = r.bin_range(i);
        let bar = "#".repeat((c * 50 / peak) as usize);
        out.push_str(&format!("  [{lo:>9.4}, {hi:>9.4})  {c:>7}  {bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable() {
        let r = HistogramResult {
            step: 2,
            min: 0.0,
            max: 4.0,
            counts: vec![1, 4, 2, 0],
            nan_count: 0,
        };
        let s = render_histogram("demo", &r);
        assert!(s.contains("step 2: 7 values"));
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("##################################################"));
    }
}
