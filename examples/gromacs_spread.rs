//! The paper's GROMACS workflow (Fig. 7): atom coordinates streamed from a
//! bead-spring molecular dynamics run are collapsed to distances-from-
//! origin and histogrammed, "showing an evolution of the spread of the
//! particles throughout the simulation".
//!
//! The example prints the mean radius per timestep so the spread is
//! visible at a glance.
//!
//! Run with: `cargo run --release -p sb-examples --bin gromacs_spread`

use sb_examples::render_histogram;
use smartblock::prelude::*;
use smartblock::workflows::{gromacs_workflow, PresetScale};

fn main() {
    let scale = PresetScale {
        sim_ranks: 4,
        analysis_ranks: vec![3, 1],
        io_steps: 5,
        substeps: 40,
        bins: 14,
        ..PresetScale::default()
    }
    .size("chains", 48)
    .size("len", 16);

    println!("assembling: gromacs -> magnitude -> histogram");
    let (workflow, results) = gromacs_workflow(&scale);
    let report = workflow
        .run_with(RunOptions::default())
        .expect("workflow run");

    println!("spread of the atom cloud over time:");
    for r in results.lock().iter() {
        // Mean radius from the histogram itself: bin centers x counts.
        let total = r.total().max(1) as f64;
        let mean: f64 = r
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let (lo, hi) = r.bin_range(i);
                (lo + hi) / 2.0 * c as f64
            })
            .sum::<f64>()
            / total;
        println!("  step {}: mean |x| = {mean:.4}", r.step);
    }
    if let Some(last) = results.lock().last() {
        println!("\n{}", render_histogram("final spread", last));
    }
    println!("end-to-end time: {:.3}s", report.elapsed.as_secs_f64());
}
