//! Quickstart: the paper's LAMMPS workflow (Fig. 5) in ~20 lines.
//!
//! A mini-LAMMPS crack simulation streams `particles × {ID, Type, vx, vy,
//! vz}`; Select keeps the velocity columns by *name*, Magnitude collapses
//! them to speeds, Histogram prints the per-timestep velocity distribution.
//!
//! Run with: `cargo run --release -p sb-examples --bin quickstart`

use sb_examples::render_histogram;
use smartblock::prelude::*;
use smartblock::workflows::{lammps_workflow, PresetScale};

fn main() {
    let scale = PresetScale {
        sim_ranks: 4,
        analysis_ranks: vec![2, 2, 1],
        io_steps: 4,
        substeps: 10,
        bins: 16,
        ..PresetScale::default()
    }
    .size("nx", 48)
    .size("ny", 48);

    println!("assembling: lammps -> select(vx,vy,vz) -> magnitude -> histogram");
    let (workflow, results) = lammps_workflow(&scale);
    println!("components: {:?}", workflow.labels());

    let report = workflow
        .run_with(RunOptions::default())
        .expect("workflow run");

    for r in results.lock().iter() {
        println!("\n{}", render_histogram("velocity magnitudes", r));
    }

    println!("{}", report.summary());
}
