//! Extension-component behaviours: Reduce, Threshold, Transpose, and
//! multi-subscriber (reader-group) DAGs — the capabilities beyond the
//! paper's four components.

use std::sync::Arc;

use parking_lot::Mutex;
use sb_data::{Buffer, Shape, Variable};
use sb_stream::WriterOptions;
use smartblock::launch::SimCode;
use smartblock::prelude::*;
use smartblock::workflows::Simulation;

fn cube_source(step: u64) -> Variable {
    // 2 x 3 x 4, element = linear index + step.
    let data: Vec<f64> = (0..24).map(|i| (i as u64 + step) as f64).collect();
    Variable::new(
        "t",
        Shape::of(&[("a", 2), ("b", 3), ("c", 4)]),
        Buffer::from(data),
    )
    .unwrap()
}

fn collect_array(
    wf: &mut Workflow,
    stream: &str,
    array: &'static str,
) -> Arc<Mutex<Vec<Vec<f64>>>> {
    let out: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    wf.add_sink(
        format!("collect-{array}"),
        1,
        stream.to_string(),
        move |_s, vars| {
            sink.lock().push(vars[array].data.to_f64_vec());
        },
    );
    out
}

#[test]
fn reduce_component_collapses_an_axis_across_ranks() {
    let mut wf = Workflow::new();
    wf.add_source("gen", 2, "cube.fp", |step| {
        (step < 2).then(|| cube_source(step))
    });
    wf.add(
        3,
        Reduce::new(("cube.fp", "t"), 2, ReduceOp::Sum, ("sums.fp", "s")),
    );
    let got = collect_array(&mut wf, "sums.fp", "s");
    wf.run_with(RunOptions::default()).unwrap();

    let got = got.lock().clone();
    assert_eq!(got.len(), 2);
    for (step, values) in got.iter().enumerate() {
        // 2x3 sums of 4-element rows.
        assert_eq!(values.len(), 6);
        for (row, v) in values.iter().enumerate() {
            let base = row * 4;
            let expect: f64 = (base..base + 4)
                .map(|i| (i as u64 + step as u64) as f64)
                .sum();
            assert_eq!(*v, expect, "step {step} row {row}");
        }
    }
}

#[test]
fn reduce_component_produces_scalar_for_1d_input() {
    let mut wf = Workflow::new();
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 1).then(|| {
            Variable::new(
                "x",
                Shape::linear("n", 10),
                Buffer::F64((1..=10).map(f64::from).collect()),
            )
            .unwrap()
        })
    });
    wf.add(
        3,
        Reduce::new(("v.fp", "x"), 0, ReduceOp::Mean, ("m.fp", "mean")),
    );
    let got = collect_array(&mut wf, "m.fp", "mean");
    wf.run_with(RunOptions::default()).unwrap();
    assert_eq!(got.lock().clone(), vec![vec![5.5]]);
}

#[test]
fn threshold_component_filters_with_global_indices() {
    let mut wf = Workflow::new();
    wf.add_source("gen", 2, "v.fp", |step| {
        (step < 1).then(|| {
            // 12 values: only multiples of 3 exceed 8 -> 9, 10, 11 pass.
            let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
            Variable::new("x", Shape::linear("n", 12), Buffer::from(data)).unwrap()
        })
    });
    wf.add(
        3,
        Threshold::new(
            ("v.fp", "x"),
            Predicate::GreaterThan(8.0),
            ("kept.fp", "big"),
        ),
    );
    let values: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(Vec::new()));
    let indices: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(Vec::new()));
    let (v2, i2) = (Arc::clone(&values), Arc::clone(&indices));
    wf.add_sink("end", 1, "kept.fp", move |_s, vars| {
        v2.lock().push(vars["big"].data.to_f64_vec());
        i2.lock().push(vars["big_indices"].data.to_f64_vec());
    });
    wf.run_with(RunOptions::default()).unwrap();
    assert_eq!(values.lock().clone(), vec![vec![9.0, 10.0, 11.0]]);
    assert_eq!(indices.lock().clone(), vec![vec![9.0, 10.0, 11.0]]);
}

#[test]
fn threshold_handles_empty_result_sets() {
    let mut wf = Workflow::new();
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 2)
            .then(|| Variable::new("x", Shape::linear("n", 4), Buffer::F64(vec![1.0; 4])).unwrap())
    });
    wf.add(
        2,
        Threshold::new(
            ("v.fp", "x"),
            Predicate::GreaterThan(100.0),
            ("kept.fp", "none"),
        ),
    );
    let got = collect_array(&mut wf, "kept.fp", "none");
    wf.run_with(RunOptions::default()).unwrap();
    assert_eq!(got.lock().clone(), vec![Vec::<f64>::new(), Vec::new()]);
}

#[test]
fn transpose_component_reorders_axes_across_ranks() {
    let mut wf = Workflow::new();
    wf.add_source("gen", 2, "cube.fp", |step| {
        (step < 1).then(|| cube_source(step))
    });
    // Output dims: (c, a, b).
    wf.add(
        2,
        Transpose::new(("cube.fp", "t"), vec![2, 0, 1], ("tp.fp", "t")),
    );
    let collected: Arc<Mutex<Vec<Variable>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&collected);
    wf.add_sink("end", 1, "tp.fp", move |_s, vars| {
        sink.lock().push(vars["t"].clone());
    });
    wf.run_with(RunOptions::default()).unwrap();

    let got = collected.lock().clone();
    assert_eq!(got.len(), 1);
    let t = &got[0];
    assert_eq!(t.shape.sizes(), vec![4, 2, 3]);
    assert_eq!(t.shape.dim_name(0), "c");
    let source = cube_source(0);
    for a in 0..2 {
        for b in 0..3 {
            for c in 0..4 {
                assert_eq!(t.get(&[c, a, b]), source.get(&[a, b, c]));
            }
        }
    }
}

#[test]
fn two_components_subscribe_to_one_simulation_stream() {
    // The reader-group DAG: no Fork, no duplication — the GROMACS stream
    // feeds both the Magnitude branch and the Stats branch directly.
    let mut wf = Workflow::new();
    wf.add(
        2,
        Simulation::new(SimCode::Gromacs)
            .param("chains", 12)
            .param("len", 8)
            .param("steps", 3)
            .param("interval", 5)
            .with_writer_options(WriterOptions::default().with_reader_groups(2)),
    );
    wf.add(
        2,
        Magnitude::new(("gromacs.fp", "coords"), ("radii.fp", "r")).with_reader_group("mag"),
    );
    wf.add(
        2,
        Stats::new(("gromacs.fp", "coords"), ("summary.fp", "s")).with_reader_group("stats"),
    );
    let hist = Histogram::new(("radii.fp", "r"), 8);
    let hist_results = hist.results_handle();
    wf.add(1, hist);
    let stats_out = collect_array(&mut wf, "summary.fp", "s");
    let report = wf.run_with(RunOptions::default()).unwrap();

    assert_eq!(hist_results.lock().len(), 3);
    let stats_rows = stats_out.lock().clone();
    assert_eq!(stats_rows.len(), 3);
    for row in &stats_rows {
        assert_eq!(row[4] as usize, 12 * 8 * 3, "count = atoms x coords");
        assert!(row[0] <= row[2] && row[2] <= row[1], "min <= mean <= max");
    }
    // Both branches consumed all steps of the same stream.
    let sim_stream = report
        .streams
        .iter()
        .find(|s| s.stream == "gromacs.fp")
        .unwrap();
    assert_eq!(sim_stream.steps_committed, 3);
    assert_eq!(sim_stream.steps_consumed, 3);
    // Bytes were read twice (once per branch).
    assert!(sim_stream.bytes_read >= 2 * sim_stream.bytes_written);
}

#[test]
fn extension_components_work_from_launch_scripts() {
    let script = r#"
        aprun -n 2 gtcp slices=8 points=12 steps=2 interval=3 &
        aprun -n 2 transpose gtcp.fp plasma 1,0,2 tp.fp plasma_t &
        aprun -n 2 reduce tp.fp plasma_t 2 mean rm.fp means &
        aprun -n 1 threshold rm.fp means gt 0.9 th.fp hot &
        wait
    "#;
    let wf = smartblock::workflows::script_to_workflow(script).unwrap();
    assert_eq!(
        wf.labels(),
        vec!["gtcp", "transpose", "reduce", "threshold"]
    );
    let report = wf.run_with(RunOptions::default()).unwrap();
    for c in &report.components {
        assert_eq!(c.stats.steps, 2, "{}", c.label);
    }
    // The threshold output stream exists and carried both arrays.
    let th = report.streams.iter().find(|s| s.stream == "th.fp").unwrap();
    assert_eq!(th.steps_committed, 2);
}

#[test]
fn deep_pipeline_with_varied_ranks_stays_correct() {
    // A seven-stage chain mixing every transform kind, each at a different
    // rank count — the paper's "any number of components in any order"
    // claim under stress.
    use sb_data::{Shape, Variable};
    let mut wf = Workflow::new();
    wf.add_source("gen", 3, "s0.fp", |step| {
        (step < 4).then(|| {
            let data: Vec<f64> = (0..2 * 6 * 4).map(|i| (i as u64 + step) as f64).collect();
            Variable::new(
                "t",
                Shape::of(&[("a", 2), ("b", 6), ("c", 4)]),
                Buffer::from(data),
            )
            .unwrap()
            .with_labels(2, &["w", "x", "y", "z"])
            .unwrap()
        })
    });
    wf.add(
        2,
        Select::new(("s0.fp", "t"), 2, ["x", "z"], ("s1.fp", "t")),
    );
    wf.add(
        4,
        Transpose::new(("s1.fp", "t"), vec![1, 0, 2], ("s2.fp", "t")),
    );
    wf.add(3, DimReduce::new(("s2.fp", "t"), 0, 1, ("s3.fp", "t")));
    wf.add(
        2,
        Reduce::new(("s3.fp", "t"), 1, ReduceOp::Mean, ("s4.fp", "t")),
    );
    wf.add(2, TemporalMean::new(("s4.fp", "t"), 2, ("s5.fp", "t")));
    let hist = Histogram::new(("s5.fp", "t"), 4);
    let results = hist.results_handle();
    wf.add(1, hist);
    assert!(wf.validate().is_empty());
    wf.run_with(RunOptions::default()).unwrap();

    let got = results.lock().clone();
    assert_eq!(got.len(), 4);
    // Shape bookkeeping: select -> [2,6,2]; transpose(1,0,2) -> [6,2,2];
    // dim-reduce(0 into 1) -> [12,2]; reduce(mean over dim 1) -> [12];
    // histogram bins 12 values per step.
    assert!(got.iter().all(|h| h.total() == 12), "{got:?}");

    // Value check for step 0, element 0 of the final vector: the pipeline
    // is deterministic, so compute the same thing serially.
    let serial = {
        let data: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let v = Variable::new(
            "t",
            Shape::of(&[("a", 2), ("b", 6), ("c", 4)]),
            Buffer::from(data),
        )
        .unwrap()
        .with_labels(2, &["w", "x", "y", "z"])
        .unwrap();
        let v = smartblock::select::select_rows(&v, 2, &[1, 3]).unwrap();
        let v = smartblock::transpose::permute_axes(&v, &[1, 0, 2]).unwrap();
        let v = smartblock::dim_reduce::dim_reduce(&v, 0, 1).unwrap();
        smartblock::reduce::reduce_axis(&v, 1, ReduceOp::Mean).unwrap()
    };
    // TemporalMean at step 0 is the identity, so histogram 0's range must
    // match the serial vector's range.
    let lo = serial
        .data
        .to_f64_vec()
        .iter()
        .cloned()
        .fold(f64::MAX, f64::min);
    let hi = serial
        .data
        .to_f64_vec()
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max);
    assert!((got[0].min - lo).abs() < 1e-12);
    assert!((got[0].max - hi).abs() < 1e-12);
}
