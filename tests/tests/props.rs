//! Property-based tests over the core data structures and kernels:
//! decomposition tiling, region-copy identity, the Select and Dim-Reduce
//! mapping laws, histogram conservation, container round-trips, and
//! collective/merge algebra.

use proptest::prelude::*;
use sb_data::decompose::{decompose_along, decompose_grid, split_1d, split_1d_part};
use sb_data::region::copy_region;
use sb_data::{Buffer, DType, Region, Shape, Variable};
use smartblock::all_pairs::{condensed_len, condensed_offset};
use smartblock::dim_reduce::dim_reduce;
use smartblock::histogram::bin_counts;
use smartblock::reduce::{reduce_axis, ReduceOp};
use smartblock::select::select_rows;
use smartblock::stats::Moments;
use smartblock::temporal::MovingMean;
use smartblock::transpose::permute_axes;

/// A random small shape of 1..=4 dims with extents 1..=6.
fn shapes() -> impl Strategy<Value = Shape> {
    prop::collection::vec(1usize..=6, 1..=4).prop_map(|sizes| {
        Shape::new(
            sizes
                .into_iter()
                .enumerate()
                .map(|(i, s)| sb_data::Dim::new(format!("d{i}"), s))
                .collect(),
        )
    })
}

/// A variable over `shape` whose element at linear index `i` is `i`.
fn indexed_variable(shape: &Shape) -> Variable {
    let data: Vec<f64> = (0..shape.total_len()).map(|i| i as f64).collect();
    Variable::new("v", shape.clone(), data.into()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_1d_tiles_and_balances(len in 0usize..500, nparts in 1usize..20) {
        let parts = split_1d(len, nparts);
        prop_assert_eq!(parts.len(), nparts);
        // Contiguous coverage.
        let mut expect_off = 0;
        for &(off, count) in &parts {
            prop_assert_eq!(off, expect_off);
            expect_off += count;
        }
        prop_assert_eq!(expect_off, len);
        // Balance: sizes differ by at most one.
        let max = parts.iter().map(|p| p.1).max().unwrap();
        let min = parts.iter().map(|p| p.1).min().unwrap();
        prop_assert!(max - min <= 1);
        // Indexed accessor agrees.
        for (p, &pair) in parts.iter().enumerate() {
            prop_assert_eq!(split_1d_part(len, nparts, p), pair);
        }
    }

    #[test]
    fn decompositions_tile_disjointly(shape in shapes(), nparts in 1usize..8, which in 0usize..2) {
        let regions = if which == 0 {
            decompose_along(&shape, 0, nparts)
        } else {
            decompose_grid(&shape, nparts)
        };
        let total: usize = regions.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, shape.total_len());
        for r in &regions {
            prop_assert!(r.validate(&shape).is_ok());
        }
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                prop_assert!(regions[i].intersect(&regions[j]).is_none());
            }
        }
    }

    #[test]
    fn scatter_then_gather_is_identity(shape in shapes(), nparts in 1usize..6) {
        // Decompose a tagged array into writer chunks, reassemble through
        // copy_region (the MxN primitive), and require exact identity.
        let source = indexed_variable(&shape);
        let whole = Region::whole(&shape);
        let regions = decompose_along(&shape, 0, nparts);
        let mut rebuilt = Buffer::zeros(DType::F64, shape.total_len());
        for region in &regions {
            if region.is_empty() {
                continue;
            }
            // Writer-side: extract the local chunk.
            let local = source.extract(region).unwrap();
            // Reader-side: copy it into the assembled whole.
            copy_region(&local.data, region, &mut rebuilt, &whole, region).unwrap();
        }
        prop_assert_eq!(rebuilt, source.data);
    }

    #[test]
    fn arbitrary_boxes_reassemble(shape in shapes(), seed in 0u64..1000) {
        // A reader bounding box never depends on how writers chunked the
        // data: chunk along dim 0, then read a random box and compare with
        // a direct extract.
        let source = indexed_variable(&shape);
        let nparts = (seed as usize % 4) + 1;
        let regions = decompose_along(&shape, 0, nparts);

        // Random box from the seed.
        let mut offset = Vec::new();
        let mut count = Vec::new();
        let mut s = seed;
        for d in 0..shape.ndims() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let size = shape.size(d);
            let off = (s >> 33) as usize % size;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let cnt = ((s >> 33) as usize % (size - off)) + 1;
            offset.push(off);
            count.push(cnt);
        }
        let want = Region::new(offset, count);

        let mut assembled = Buffer::zeros(DType::F64, want.len());
        let mut covered = 0;
        for region in &regions {
            if let Some(overlap) = region.intersect(&want) {
                let local = source.extract(region).unwrap();
                copy_region(&local.data, region, &mut assembled, &want, &overlap).unwrap();
                covered += overlap.len();
            }
        }
        prop_assert_eq!(covered, want.len());
        let direct = source.extract(&want).unwrap();
        prop_assert_eq!(assembled, direct.data);
    }

    #[test]
    fn select_matches_naive_gather(shape in shapes(), dim_seed in 0usize..4, pick_seed in 0u64..100) {
        let dim = dim_seed % shape.ndims();
        let d = shape.size(dim);
        // Pick a pseudo-random subset (with order) of rows.
        let mut indices = Vec::new();
        let mut s = pick_seed;
        for _ in 0..(pick_seed as usize % d) + 1 {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            indices.push((s >> 33) as usize % d);
        }
        let var = indexed_variable(&shape);
        let out = select_rows(&var, dim, &indices).unwrap();
        prop_assert_eq!(out.shape.size(dim), indices.len());
        // Naive elementwise check.
        for lin in 0..out.shape.total_len() {
            let mut idx = out.shape.multi_index(lin);
            idx[dim] = indices[idx[dim]];
            prop_assert_eq!(out.data.get_f64(lin), var.get(&idx));
        }
    }

    #[test]
    fn dim_reduce_obeys_the_mapping_law(shape in shapes(), rg in 0usize..12) {
        prop_assume!(shape.ndims() >= 2);
        let ndims = shape.ndims();
        let remove = rg % ndims;
        let grow = (remove + 1 + (rg / ndims) % (ndims - 1)) % ndims;
        prop_assume!(remove != grow);
        let var = indexed_variable(&shape);
        let out = dim_reduce(&var, remove, grow).unwrap();
        prop_assert_eq!(out.data.len(), var.data.len());
        let g = shape.size(grow);
        let grow_out = if remove < grow { grow - 1 } else { grow };
        // Check the law: element at input idx lands at output idx with the
        // removed index folded into the grown one.
        for lin in 0..shape.total_len() {
            let idx = shape.multi_index(lin);
            let mut out_idx: Vec<usize> = idx
                .iter()
                .enumerate()
                .filter(|(d, _)| *d != remove)
                .map(|(_, &v)| v)
                .collect();
            out_idx[grow_out] = idx[remove] * g + idx[grow];
            prop_assert_eq!(out.get(&out_idx), lin as f64);
        }
    }

    #[test]
    fn transpose_is_a_bijection_with_correct_mapping(shape in shapes(), seed in 0u64..5040) {
        // Derive a permutation from the seed (factorial number system).
        let ndims = shape.ndims();
        let mut avail: Vec<usize> = (0..ndims).collect();
        let mut perm = Vec::with_capacity(ndims);
        let mut s = seed as usize;
        for k in (1..=ndims).rev() {
            perm.push(avail.remove(s % k));
            s /= k;
        }
        let var = indexed_variable(&shape);
        let out = permute_axes(&var, &perm).unwrap();
        prop_assert_eq!(out.data.len(), var.data.len());
        for lin in 0..shape.total_len() {
            let idx = shape.multi_index(lin);
            let out_idx: Vec<usize> = perm.iter().map(|&p| idx[p]).collect();
            prop_assert_eq!(out.get(&out_idx), lin as f64);
        }
    }

    #[test]
    fn reduce_axis_matches_naive_fold(shape in shapes(), dim_seed in 0usize..4, op_pick in 0usize..4) {
        let dim = dim_seed % shape.ndims();
        let op = [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Min, ReduceOp::Max][op_pick];
        let var = indexed_variable(&shape);
        let out = reduce_axis(&var, dim, op).unwrap();
        prop_assert_eq!(out.shape.total_len(), shape.total_len() / shape.size(dim));
        // Naive check on every output element.
        for lin in 0..out.shape.total_len() {
            let out_idx = out.shape.multi_index(lin);
            let mut values = Vec::new();
            for k in 0..shape.size(dim) {
                let mut idx = out_idx.clone();
                idx.insert(dim, k);
                values.push(var.get(&idx));
            }
            let expect = match op {
                ReduceOp::Sum => values.iter().sum::<f64>(),
                ReduceOp::Mean => values.iter().sum::<f64>() / values.len() as f64,
                ReduceOp::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
                ReduceOp::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            };
            prop_assert!((out.data.get_f64(lin) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn moving_mean_equals_naive_window_average(
        steps in prop::collection::vec(-100f64..100.0, 1..20),
        window in 1usize..6,
    ) {
        let mut m = MovingMean::new(window);
        for (i, &v) in steps.iter().enumerate() {
            let got = m.push(vec![v]);
            let lo = i.saturating_sub(window - 1);
            let expect: f64 =
                steps[lo..=i].iter().sum::<f64>() / (i - lo + 1) as f64;
            prop_assert!((got[0] - expect).abs() < 1e-9, "step {i}");
        }
    }

    #[test]
    fn histogram_conserves_count_and_respects_edges(
        values in prop::collection::vec(-1e6f64..1e6, 0..200),
        nbins in 1usize..32,
    ) {
        let (min, max) = values.iter().fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(a, b), &v| (a.min(v), b.max(v)),
        );
        if values.is_empty() {
            return Ok(());
        }
        let counts = bin_counts(&values, min, max, nbins);
        prop_assert_eq!(counts.iter().sum::<u64>(), values.len() as u64);
        // Naive binning agrees.
        let width = (max - min) / nbins as f64;
        if width > 0.0 {
            let mut naive = vec![0u64; nbins];
            for &v in &values {
                let mut b = ((v - min) / width) as usize;
                if b >= nbins {
                    b = nbins - 1;
                }
                naive[b] += 1;
            }
            prop_assert_eq!(counts, naive);
        }
    }

    #[test]
    fn condensed_indexing_is_consistent(n in 1usize..200) {
        prop_assert_eq!(condensed_offset(n, 0), 0);
        let mut acc = 0;
        for i in 0..n {
            prop_assert_eq!(condensed_offset(n, i), acc);
            acc += n - 1 - i;
        }
        prop_assert_eq!(condensed_len(n), acc);
    }

    #[test]
    fn container_round_trips_random_variables(
        shape in shapes(),
        dtype_pick in 0usize..6,
        step in 0u64..1000,
    ) {
        let dtype = [DType::F32, DType::F64, DType::I32, DType::I64, DType::U32, DType::U64][dtype_pick];
        let values: Vec<f64> = (0..shape.total_len()).map(|i| (i as f64) - 3.0).collect();
        let mut var = Variable::new("v", shape.clone(), Buffer::from_f64_vec(dtype, values)).unwrap();
        var.set_labels(0, (0..shape.size(0)).map(|i| format!("q{i}")).collect()).unwrap();
        var.attrs.insert("s".into(), sb_data::AttrValue::Int(step as i64));

        let mut w = sb_data::container::ContainerWriter::new(Vec::new()).unwrap();
        w.write_step(step, &[var.clone()]).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = sb_data::container::ContainerReader::new(std::io::Cursor::new(bytes)).unwrap();
        let (got_step, vars) = r.next_step().unwrap().unwrap();
        prop_assert_eq!(got_step, step);
        prop_assert_eq!(&vars[0], &var);
        prop_assert!(r.next_step().unwrap().is_none());
    }

    #[test]
    fn moments_merge_is_order_insensitive(
        a in prop::collection::vec(-100f64..100.0, 1..50),
        b in prop::collection::vec(-100f64..100.0, 1..50),
    ) {
        let ab = Moments::merge(Moments::of(&a), Moments::of(&b));
        let ba = Moments::merge(Moments::of(&b), Moments::of(&a));
        let whole = {
            let mut all = a.clone();
            all.extend_from_slice(&b);
            Moments::of(&all)
        };
        prop_assert_eq!(ab.count, whole.count);
        prop_assert_eq!(ab.min, ba.min);
        prop_assert_eq!(ab.max, whole.max);
        prop_assert!((ab.sum - whole.sum).abs() <= 1e-9 * whole.sum.abs().max(1.0));
        prop_assert!((ab.mean() - whole.mean()).abs() < 1e-9);
    }
}

/// Collectives agree with serial folds for any rank count — run outside
/// proptest's per-case loop to keep thread churn sane.
#[test]
fn collectives_agree_with_serial_folds_across_rank_counts() {
    for nranks in 1..=8usize {
        let out = sb_comm::launch(nranks, |comm| {
            let v = (comm.rank() * 7 + 3) as i64;
            let sum = comm.allreduce(v, |a, b| a + b);
            let min = comm.allreduce(v, sb_comm::ops::min);
            let gathered = comm.allgather(v);
            (sum, min, gathered)
        })
        .unwrap();
        let values: Vec<i64> = (0..nranks).map(|r| (r * 7 + 3) as i64).collect();
        let expect_sum: i64 = values.iter().sum();
        let expect_min = *values.iter().min().unwrap();
        for (sum, min, gathered) in out {
            assert_eq!(sum, expect_sum, "nranks={nranks}");
            assert_eq!(min, expect_min);
            assert_eq!(gathered, values);
        }
    }
}
