//! Property tests over the core data structures and kernels: decomposition
//! tiling, region-copy identity, the Select and Dim-Reduce mapping laws,
//! histogram conservation, container round-trips, and collective/merge
//! algebra.
//!
//! Each property is exercised over a deterministic sweep of generated
//! cases (shapes, subsets, permutations derived from a seeded LCG), so the
//! suite needs no property-testing dependency and every failure is
//! reproducible from the case index alone.

use sb_data::decompose::{decompose_along, decompose_grid, split_1d, split_1d_part};
use sb_data::region::copy_region;
use sb_data::{Buffer, DType, Region, Shape, Variable};
use smartblock::all_pairs::{condensed_len, condensed_offset};
use smartblock::dim_reduce::dim_reduce;
use smartblock::histogram::bin_counts;
use smartblock::reduce::{reduce_axis, ReduceOp};
use smartblock::select::select_rows;
use smartblock::stats::Moments;
use smartblock::temporal::MovingMean;
use smartblock::transpose::permute_axes;

/// A small deterministic generator for case derivation.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// A value in `0..n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        self.next() as usize % n
    }

    /// A float in `[lo, hi)`.
    fn float(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() as f64 / (1u64 << 31) as f64) * (hi - lo)
    }
}

/// A deterministic sweep of small shapes: 1..=4 dims with extents 1..=6,
/// seeded per case index. Mirrors the old proptest strategy's domain.
fn case_shapes(cases: usize) -> Vec<Shape> {
    (0..cases)
        .map(|case| {
            let mut rng = Lcg(0x5EED ^ (case as u64) << 13);
            let ndims = rng.below(4) + 1;
            Shape::new(
                (0..ndims)
                    .map(|i| sb_data::Dim::new(format!("d{i}"), rng.below(6) + 1))
                    .collect(),
            )
        })
        .collect()
}

/// A variable over `shape` whose element at linear index `i` is `i`.
fn indexed_variable(shape: &Shape) -> Variable {
    let data: Vec<f64> = (0..shape.total_len()).map(|i| i as f64).collect();
    Variable::new("v", shape.clone(), Buffer::from(data)).unwrap()
}

#[test]
fn split_1d_tiles_and_balances() {
    for len in [0usize, 1, 2, 7, 64, 99, 250, 499] {
        for nparts in 1usize..20 {
            let parts = split_1d(len, nparts);
            assert_eq!(parts.len(), nparts);
            // Contiguous coverage.
            let mut expect_off = 0;
            for &(off, count) in &parts {
                assert_eq!(off, expect_off, "len={len} nparts={nparts}");
                expect_off += count;
            }
            assert_eq!(expect_off, len);
            // Balance: sizes differ by at most one.
            let max = parts.iter().map(|p| p.1).max().unwrap();
            let min = parts.iter().map(|p| p.1).min().unwrap();
            assert!(max - min <= 1, "len={len} nparts={nparts}");
            // Indexed accessor agrees.
            for (p, &pair) in parts.iter().enumerate() {
                assert_eq!(split_1d_part(len, nparts, p), pair);
            }
        }
    }
}

#[test]
fn decompositions_tile_disjointly() {
    for (case, shape) in case_shapes(32).iter().enumerate() {
        for nparts in 1usize..8 {
            for which in 0..2 {
                let regions = if which == 0 {
                    decompose_along(shape, 0, nparts)
                } else {
                    decompose_grid(shape, nparts)
                };
                let total: usize = regions.iter().map(|r| r.len()).sum();
                assert_eq!(total, shape.total_len(), "case {case} nparts {nparts}");
                for r in &regions {
                    assert!(r.validate(shape).is_ok());
                }
                for i in 0..regions.len() {
                    for j in i + 1..regions.len() {
                        assert!(
                            regions[i].intersect(&regions[j]).is_none(),
                            "case {case}: regions {i} and {j} overlap"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn scatter_then_gather_is_identity() {
    for shape in case_shapes(32) {
        for nparts in 1usize..6 {
            // Decompose a tagged array into writer chunks, reassemble
            // through copy_region (the MxN primitive), and require exact
            // identity.
            let source = indexed_variable(&shape);
            let whole = Region::whole(&shape);
            let regions = decompose_along(&shape, 0, nparts);
            let mut rebuilt = Buffer::zeros(DType::F64, shape.total_len());
            for region in &regions {
                if region.is_empty() {
                    continue;
                }
                // Writer-side: extract the local chunk.
                let local = source.extract(region).unwrap();
                // Reader-side: copy it into the assembled whole.
                copy_region(&local.data, region, &mut rebuilt, &whole, region).unwrap();
            }
            assert_eq!(rebuilt, source.data, "{shape} nparts {nparts}");
        }
    }
}

#[test]
fn arbitrary_boxes_reassemble() {
    // A reader bounding box never depends on how writers chunked the data:
    // chunk along dim 0, then read a derived box and compare with a direct
    // extract.
    for (case, shape) in case_shapes(48).iter().enumerate() {
        let seed = case as u64 * 37 + 5;
        let source = indexed_variable(shape);
        let nparts = (seed as usize % 4) + 1;
        let regions = decompose_along(shape, 0, nparts);

        // Derived box from the seed.
        let mut rng = Lcg(seed);
        let mut offset = Vec::new();
        let mut count = Vec::new();
        for d in 0..shape.ndims() {
            let size = shape.size(d);
            let off = rng.below(size);
            let cnt = rng.below(size - off) + 1;
            offset.push(off);
            count.push(cnt);
        }
        let want = Region::new(offset, count);

        let mut assembled = Buffer::zeros(DType::F64, want.len());
        let mut covered = 0;
        for region in &regions {
            if let Some(overlap) = region.intersect(&want) {
                let local = source.extract(region).unwrap();
                copy_region(&local.data, region, &mut assembled, &want, &overlap).unwrap();
                covered += overlap.len();
            }
        }
        assert_eq!(covered, want.len(), "case {case}");
        let direct = source.extract(&want).unwrap();
        assert_eq!(assembled, direct.data, "case {case}");
    }
}

#[test]
fn select_matches_naive_gather() {
    for (case, shape) in case_shapes(48).iter().enumerate() {
        let mut rng = Lcg(case as u64 ^ 0xC0FFEE);
        let dim = rng.below(shape.ndims());
        let d = shape.size(dim);
        // Pick a pseudo-random subset (with order, repeats allowed) of rows.
        let indices: Vec<usize> = (0..rng.below(d) + 1).map(|_| rng.below(d)).collect();
        let var = indexed_variable(shape);
        let out = select_rows(&var, dim, &indices).unwrap();
        assert_eq!(out.shape.size(dim), indices.len());
        // Naive elementwise check.
        for lin in 0..out.shape.total_len() {
            let mut idx = out.shape.multi_index(lin);
            idx[dim] = indices[idx[dim]];
            assert_eq!(out.data.get_f64(lin), var.get(&idx), "case {case}");
        }
    }
}

#[test]
fn dim_reduce_obeys_the_mapping_law() {
    for (case, shape) in case_shapes(64).iter().enumerate() {
        if shape.ndims() < 2 {
            continue;
        }
        let ndims = shape.ndims();
        let rg = case;
        let remove = rg % ndims;
        let grow = (remove + 1 + (rg / ndims) % (ndims - 1)) % ndims;
        if remove == grow {
            continue;
        }
        let var = indexed_variable(shape);
        let out = dim_reduce(&var, remove, grow).unwrap();
        assert_eq!(out.data.len(), var.data.len());
        let g = shape.size(grow);
        let grow_out = if remove < grow { grow - 1 } else { grow };
        // Check the law: element at input idx lands at output idx with the
        // removed index folded into the grown one.
        for lin in 0..shape.total_len() {
            let idx = shape.multi_index(lin);
            let mut out_idx: Vec<usize> = idx
                .iter()
                .enumerate()
                .filter(|(d, _)| *d != remove)
                .map(|(_, &v)| v)
                .collect();
            out_idx[grow_out] = idx[remove] * g + idx[grow];
            assert_eq!(out.get(&out_idx), lin as f64, "case {case}");
        }
    }
}

#[test]
fn transpose_is_a_bijection_with_correct_mapping() {
    for (case, shape) in case_shapes(48).iter().enumerate() {
        // Derive a permutation from the case (factorial number system).
        let ndims = shape.ndims();
        let mut avail: Vec<usize> = (0..ndims).collect();
        let mut perm = Vec::with_capacity(ndims);
        let mut s = case * 97 + 11;
        for k in (1..=ndims).rev() {
            perm.push(avail.remove(s % k));
            s /= k;
        }
        let var = indexed_variable(shape);
        let out = permute_axes(&var, &perm).unwrap();
        assert_eq!(out.data.len(), var.data.len());
        for lin in 0..shape.total_len() {
            let idx = shape.multi_index(lin);
            let out_idx: Vec<usize> = perm.iter().map(|&p| idx[p]).collect();
            assert_eq!(out.get(&out_idx), lin as f64, "case {case} perm {perm:?}");
        }
    }
}

#[test]
fn reduce_axis_matches_naive_fold() {
    let ops = [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Min, ReduceOp::Max];
    for (case, shape) in case_shapes(32).iter().enumerate() {
        for dim in 0..shape.ndims() {
            let op = ops[case % 4];
            let var = indexed_variable(shape);
            let out = reduce_axis(&var, dim, op).unwrap();
            assert_eq!(out.shape.total_len(), shape.total_len() / shape.size(dim));
            // Naive check on every output element.
            for lin in 0..out.shape.total_len() {
                let out_idx = out.shape.multi_index(lin);
                let mut values = Vec::new();
                for k in 0..shape.size(dim) {
                    let mut idx = out_idx.clone();
                    idx.insert(dim, k);
                    values.push(var.get(&idx));
                }
                let expect = match op {
                    ReduceOp::Sum => values.iter().sum::<f64>(),
                    ReduceOp::Mean => values.iter().sum::<f64>() / values.len() as f64,
                    ReduceOp::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
                    ReduceOp::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                };
                assert!(
                    (out.data.get_f64(lin) - expect).abs() < 1e-9,
                    "case {case} dim {dim}"
                );
            }
        }
    }
}

#[test]
fn moving_mean_equals_naive_window_average() {
    for case in 0..24u64 {
        let mut rng = Lcg(case * 131 + 7);
        let steps: Vec<f64> = (0..rng.below(19) + 1)
            .map(|_| rng.float(-100.0, 100.0))
            .collect();
        let window = rng.below(5) + 1;
        let mut m = MovingMean::new(window);
        for (i, &v) in steps.iter().enumerate() {
            let got = m.push(vec![v]);
            let lo = i.saturating_sub(window - 1);
            let expect: f64 = steps[lo..=i].iter().sum::<f64>() / (i - lo + 1) as f64;
            assert!((got[0] - expect).abs() < 1e-9, "case {case} step {i}");
        }
    }
}

#[test]
fn histogram_conserves_count_and_respects_edges() {
    for case in 0..32u64 {
        let mut rng = Lcg(case ^ 0xB1A5);
        let values: Vec<f64> = (0..rng.below(200)).map(|_| rng.float(-1e6, 1e6)).collect();
        let nbins = rng.below(31) + 1;
        let (min, max) = values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
        if values.is_empty() {
            continue;
        }
        let (counts, _) = bin_counts(&values, min, max, nbins);
        assert_eq!(
            counts.iter().sum::<u64>(),
            values.len() as u64,
            "case {case}"
        );
        // Naive binning agrees.
        let width = (max - min) / nbins as f64;
        if width > 0.0 {
            let mut naive = vec![0u64; nbins];
            for &v in &values {
                let mut b = ((v - min) / width) as usize;
                if b >= nbins {
                    b = nbins - 1;
                }
                naive[b] += 1;
            }
            assert_eq!(counts, naive, "case {case}");
        }
    }
}

#[test]
fn condensed_indexing_is_consistent() {
    for n in (1usize..200).step_by(7).chain([1, 2, 199]) {
        assert_eq!(condensed_offset(n, 0), 0);
        let mut acc = 0;
        for i in 0..n {
            assert_eq!(condensed_offset(n, i), acc, "n={n} i={i}");
            acc += n - 1 - i;
        }
        assert_eq!(condensed_len(n), acc);
    }
}

#[test]
fn container_round_trips_random_variables() {
    let dtypes = [
        DType::F32,
        DType::F64,
        DType::I32,
        DType::I64,
        DType::U32,
        DType::U64,
    ];
    for (case, shape) in case_shapes(24).iter().enumerate() {
        let dtype = dtypes[case % dtypes.len()];
        let step = case as u64 * 41;
        let values: Vec<f64> = (0..shape.total_len()).map(|i| (i as f64) - 3.0).collect();
        let mut var =
            Variable::new("v", shape.clone(), Buffer::from_f64_vec(dtype, values)).unwrap();
        var.set_labels(0, (0..shape.size(0)).map(|i| format!("q{i}")).collect())
            .unwrap();
        var.attrs
            .insert("s".into(), sb_data::AttrValue::Int(step as i64));

        let mut w = sb_data::container::ContainerWriter::new(Vec::new()).unwrap();
        w.write_step(step, &[var.clone()]).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = sb_data::container::ContainerReader::new(std::io::Cursor::new(bytes)).unwrap();
        let (got_step, vars) = r.next_step().unwrap().unwrap();
        assert_eq!(got_step, step);
        assert_eq!(&vars[0], &var, "case {case}");
        assert!(r.next_step().unwrap().is_none());
    }
}

/// An arbitrary chunk derived from the case index: random shape, dtype,
/// sub-box region, dimension labels, attributes — and NaN/negative-zero
/// payload values on float dtypes, the bit patterns `PartialEq` hides.
fn arbitrary_chunk(case: usize, shape: &Shape) -> sb_data::Chunk {
    let dtypes = [
        DType::F32,
        DType::F64,
        DType::I32,
        DType::I64,
        DType::U32,
        DType::U64,
    ];
    let mut rng = Lcg(case as u64 ^ 0x77AE5);
    let dtype = dtypes[rng.below(dtypes.len())];
    let mut meta = sb_data::VariableMeta::new("v", shape.clone(), dtype);
    let label_dim = rng.below(shape.ndims());
    meta.labels.insert(
        label_dim,
        (0..shape.size(label_dim))
            .map(|i| format!("q{i}"))
            .collect(),
    );
    meta.attrs
        .insert("step".into(), sb_data::AttrValue::Int(case as i64));
    meta.attrs
        .insert("dt".into(), sb_data::AttrValue::Float(0.005));
    meta.attrs
        .insert("units".into(), sb_data::AttrValue::Text("lj".into()));

    let mut offset = Vec::new();
    let mut count = Vec::new();
    for d in 0..shape.ndims() {
        let size = shape.size(d);
        let off = rng.below(size);
        offset.push(off);
        count.push(rng.below(size - off) + 1);
    }
    let region = Region::new(offset, count);
    let values: Vec<f64> = (0..region.len())
        .map(|i| match (dtype, i % 5) {
            (DType::F32 | DType::F64, 0) => f64::NAN,
            (DType::F32 | DType::F64, 1) => -0.0,
            _ => i as f64 - 2.0,
        })
        .collect();
    sb_data::Chunk::new(meta, region, Buffer::from_f64_vec(dtype, values)).unwrap()
}

/// The TCP transport's wire frame codec round-trips arbitrary chunks
/// bit-exactly: shapes of every rank, all dtypes, labels, attributes, and
/// float payloads containing NaN and negative zero.
#[test]
fn wire_codec_round_trips_arbitrary_chunks() {
    for (case, shape) in case_shapes(64).iter().enumerate() {
        let chunk = arbitrary_chunk(case, shape);
        let mut buf = Vec::new();
        sb_data::wire::encode_chunk(&mut buf, &chunk).unwrap();
        let mut slice: &[u8] = &buf;
        let back = sb_data::wire::decode_chunk(&mut slice).unwrap();
        assert!(slice.is_empty(), "case {case}: trailing bytes");
        assert_eq!(back.meta, chunk.meta, "case {case}");
        assert_eq!(back.region, chunk.region, "case {case}");
        // NaN payloads make PartialEq useless; require raw-byte identity.
        assert_eq!(
            back.data.to_le_bytes(),
            chunk.data.to_le_bytes(),
            "case {case}"
        );
    }
}

/// Truncating an encoded frame at *any* byte yields a typed `DataError`,
/// never a panic — the broker feeds untrusted sockets into this decoder.
#[test]
fn wire_codec_rejects_every_truncation() {
    for (case, shape) in case_shapes(12).iter().enumerate() {
        let chunk = arbitrary_chunk(case, shape);
        let mut buf = Vec::new();
        sb_data::wire::encode_chunk(&mut buf, &chunk).unwrap();
        for cut in 0..buf.len() {
            let mut slice: &[u8] = &buf[..cut];
            assert!(
                sb_data::wire::decode_chunk(&mut slice).is_err(),
                "case {case}: truncation at {cut} of {} decoded",
                buf.len()
            );
        }
    }
}

/// Corrupting any single header byte either errors or decodes to some
/// other *validated* chunk — never a panic, never an unchecked allocation.
#[test]
fn wire_codec_survives_corrupt_headers() {
    for (case, shape) in case_shapes(8).iter().enumerate() {
        let chunk = arbitrary_chunk(case, shape);
        let mut clean = Vec::new();
        sb_data::wire::encode_chunk(&mut clean, &chunk).unwrap();
        let header_len = clean.len() - chunk.byte_len();
        let mut rng = Lcg(case as u64 * 19 + 3);
        for i in 0..header_len {
            let flip = (rng.below(255) + 1) as u8;
            let mut bad = clean.clone();
            bad[i] ^= flip;
            let mut slice: &[u8] = &bad;
            if let Ok(decoded) = sb_data::wire::decode_chunk(&mut slice) {
                // A surviving decode must still satisfy the chunk
                // invariants re-checked by a fresh construction.
                assert!(sb_data::Chunk::new(
                    decoded.meta.clone(),
                    decoded.region.clone(),
                    decoded.data.clone()
                )
                .is_ok());
            }
        }
    }
}

/// The v2 interned frame codec round-trips arbitrary chunks bit-exactly
/// under both payload codecs. Definitions are streamed through a shared
/// intern table exactly as a long-lived TCP connection would, so each
/// distinct meta travels once across the whole sweep.
#[test]
fn interned_wire_codec_round_trips_arbitrary_chunks() {
    use sb_data::wire::{Compression, MetaDefs, MetaInternTable};
    for comp in [Compression::None, Compression::Lz] {
        let mut table = MetaInternTable::new();
        let mut defs = MetaDefs::new();
        let mut sent = 0u32;
        for (case, shape) in case_shapes(32).iter().enumerate() {
            let chunk = arbitrary_chunk(case, shape);
            let id = table.intern(&chunk.meta).unwrap();
            let mut defbuf = Vec::new();
            table.append_defs_since(sent, &mut defbuf);
            sent = table.len();
            let mut slice: &[u8] = &defbuf;
            while !slice.is_empty() {
                defs.decode_def(&mut slice).unwrap();
            }
            let mut buf = Vec::new();
            sb_data::wire::encode_chunk_interned(&mut buf, &chunk, id, comp).unwrap();
            let mut slice: &[u8] = &buf;
            let back = sb_data::wire::decode_chunk_interned(&mut slice, &defs).unwrap();
            assert!(slice.is_empty(), "case {case}: trailing bytes");
            assert_eq!(back.meta, chunk.meta, "case {case}");
            assert_eq!(back.region, chunk.region, "case {case}");
            assert_eq!(
                back.data.to_le_bytes(),
                chunk.data.to_le_bytes(),
                "case {case} ({})",
                comp.name()
            );
        }
    }
}

/// Truncating an interned frame (definition or chunk) at any byte yields a
/// typed `DataError`, never a panic — same hardening bar as the v1 codec.
#[test]
fn interned_wire_codec_rejects_every_truncation() {
    use sb_data::wire::{Compression, MetaDefs, MetaInternTable};
    for (case, shape) in case_shapes(8).iter().enumerate() {
        let chunk = arbitrary_chunk(case, shape);
        let mut table = MetaInternTable::new();
        let id = table.intern(&chunk.meta).unwrap();
        let mut defbuf = Vec::new();
        table.append_defs_since(0, &mut defbuf);
        for cut in 0..defbuf.len() {
            let mut fresh = MetaDefs::new();
            let mut slice: &[u8] = &defbuf[..cut];
            assert!(
                fresh.decode_def(&mut slice).is_err(),
                "case {case}: def truncation at {cut} decoded"
            );
        }
        let mut defs = MetaDefs::new();
        let mut slice: &[u8] = &defbuf;
        defs.decode_def(&mut slice).unwrap();
        let comp = if case % 2 == 0 {
            Compression::Lz
        } else {
            Compression::None
        };
        let mut buf = Vec::new();
        sb_data::wire::encode_chunk_interned(&mut buf, &chunk, id, comp).unwrap();
        for cut in 0..buf.len() {
            let mut slice: &[u8] = &buf[..cut];
            assert!(
                sb_data::wire::decode_chunk_interned(&mut slice, &defs).is_err(),
                "case {case}: chunk truncation at {cut} of {} decoded",
                buf.len()
            );
        }
    }
}

/// A meta frame carrying the same label dimension twice is rejected as a
/// typed container error: silently keeping either entry would let two
/// writers disagree about a dimension's quantity labels without anyone
/// noticing. Built by splicing a duplicate into a clean encode so the test
/// tracks the real layout.
#[test]
fn duplicate_label_dimensions_fail_meta_decode() {
    let shape = Shape::of(&[("row", 3), ("col", 2)]);
    let mut meta = sb_data::VariableMeta::new("v", shape, DType::F64);
    meta.labels
        .insert(0, vec!["a".into(), "b".into(), "c".into()]);
    let mut clean = Vec::new();
    sb_data::wire::encode_meta(&mut clean, &meta).unwrap();
    let mut sane: &[u8] = &clean;
    assert_eq!(sb_data::wire::decode_meta(&mut sane).unwrap(), meta);

    // Locate the label section: it starts at the u32 header count, which
    // sits right after name/dtype/dims. Re-encode a label-less twin to
    // find that offset without hardcoding layout arithmetic.
    let mut bare = Vec::new();
    let bare_meta = sb_data::VariableMeta::new("v", meta.shape.clone(), DType::F64);
    sb_data::wire::encode_meta(&mut bare, &bare_meta).unwrap();
    let labels_at = bare.len() - 8; // strip its empty nheaders + nattrs
    let entry = &clean[labels_at + 4..clean.len() - 4]; // one label entry
    let mut dup = Vec::new();
    dup.extend_from_slice(&clean[..labels_at]);
    dup.extend_from_slice(&2u32.to_le_bytes());
    dup.extend_from_slice(entry);
    dup.extend_from_slice(entry);
    dup.extend_from_slice(&0u32.to_le_bytes());
    let mut slice: &[u8] = &dup;
    let err = sb_data::wire::decode_meta(&mut slice).unwrap_err();
    assert!(
        err.to_string().contains("duplicate label"),
        "wrong error: {err}"
    );
}

#[test]
fn moments_merge_is_order_insensitive() {
    for case in 0..24u64 {
        let mut rng = Lcg(case * 53 + 1);
        let a: Vec<f64> = (0..rng.below(49) + 1)
            .map(|_| rng.float(-100.0, 100.0))
            .collect();
        let b: Vec<f64> = (0..rng.below(49) + 1)
            .map(|_| rng.float(-100.0, 100.0))
            .collect();
        let ab = Moments::merge(Moments::of(&a), Moments::of(&b));
        let ba = Moments::merge(Moments::of(&b), Moments::of(&a));
        let whole = {
            let mut all = a.clone();
            all.extend_from_slice(&b);
            Moments::of(&all)
        };
        assert_eq!(ab.count, whole.count);
        assert_eq!(ab.min, ba.min);
        assert_eq!(ab.max, whole.max);
        assert!((ab.sum - whole.sum).abs() <= 1e-9 * whole.sum.abs().max(1.0));
        assert!((ab.mean() - whole.mean()).abs() < 1e-9, "case {case}");
    }
}

/// Collectives agree with serial folds for any rank count.
#[test]
fn collectives_agree_with_serial_folds_across_rank_counts() {
    for nranks in 1..=8usize {
        let out = sb_comm::launch(nranks, |comm| {
            let v = (comm.rank() * 7 + 3) as i64;
            let sum = comm.allreduce(v, |a, b| a + b);
            let min = comm.allreduce(v, sb_comm::ops::min);
            let gathered = comm.allgather(v);
            (sum, min, gathered)
        })
        .unwrap();
        let values: Vec<i64> = (0..nranks).map(|r| (r * 7 + 3) as i64).collect();
        let expect_sum: i64 = values.iter().sum();
        let expect_min = *values.iter().min().unwrap();
        for (sum, min, gathered) in out {
            assert_eq!(sum, expect_sum, "nranks={nranks}");
            assert_eq!(min, expect_min);
            assert_eq!(gathered, values);
        }
    }
}
