//! Combine (two-input join) and TemporalMean (cross-step state) behaviours
//! inside real workflows.

use std::sync::Arc;

use parking_lot::Mutex;
use sb_data::{Buffer, Shape, Variable};
use smartblock::prelude::*;

fn linear_source(step: u64, n: usize, scale: f64) -> Variable {
    let data: Vec<f64> = (0..n).map(|i| (i as f64 + step as f64) * scale).collect();
    Variable::new("x", Shape::linear("n", n), Buffer::from(data)).unwrap()
}

fn collect(wf: &mut Workflow, stream: &str, array: &'static str) -> Arc<Mutex<Vec<Vec<f64>>>> {
    let out: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    wf.add_sink(
        format!("collect-{array}"),
        1,
        stream.to_string(),
        move |_s, vars| {
            sink.lock().push(vars[array].data.to_f64_vec());
        },
    );
    out
}

#[test]
fn combine_adds_two_different_streams() {
    let mut wf = Workflow::new();
    wf.add_source("gen-a", 2, "a.fp", |step| {
        (step < 3).then(|| linear_source(step, 8, 1.0))
    });
    wf.add_source("gen-b", 1, "b.fp", |step| {
        (step < 3).then(|| linear_source(step, 8, 10.0))
    });
    wf.add(
        2,
        Combine::new(("a.fp", "x"), BinaryOp::Add, ("b.fp", "x"), ("sum.fp", "s")),
    );
    let got = collect(&mut wf, "sum.fp", "s");
    assert!(wf.validate().is_empty());
    wf.run_with(RunOptions::default()).unwrap();

    let got = got.lock().clone();
    assert_eq!(got.len(), 3);
    for (step, values) in got.iter().enumerate() {
        for (i, v) in values.iter().enumerate() {
            let expect = (i as f64 + step as f64) * 11.0;
            assert_eq!(*v, expect, "step {step} elem {i}");
        }
    }
}

#[test]
fn combine_joins_two_arrays_of_the_same_stream() {
    // Two variables on ONE stream: Combine must open two reader groups on
    // it, and the producer must declare both.
    use sb_data::VariableMeta;
    use sb_stream::WriterOptions;

    struct TwoVarSource;
    impl Component for TwoVarSource {
        fn label(&self) -> String {
            "two-var".into()
        }
        fn output_streams(&self) -> Vec<String> {
            vec!["pair.fp".into()]
        }
        fn run(
            &self,
            comm: &sb_comm::Communicator,
            hub: &Arc<sb_stream::StreamHub>,
        ) -> smartblock::ComponentResult {
            let mut w = hub.open_writer(
                "pair.fp",
                comm.rank(),
                comm.size(),
                WriterOptions::default().with_reader_groups(2),
            );
            let mut stats = smartblock::ComponentStats::default();
            for step in 0..2u64 {
                let a = linear_source(step, 6, 1.0);
                let mut b = linear_source(step, 6, 2.0);
                b.name = "y".into();
                w.begin_step().unwrap();
                w.put(sb_data::Chunk::whole(a));
                let meta = VariableMeta {
                    name: "y".into(),
                    shape: b.shape.clone(),
                    dtype: b.data.dtype(),
                    labels: b.labels.clone(),
                    attrs: b.attrs.clone(),
                };
                w.put(sb_data::Chunk::new(meta, sb_data::Region::whole(&b.shape), b.data).unwrap());
                w.end_step().unwrap();
                stats.steps += 1;
            }
            w.close();
            Ok(stats)
        }
    }

    let mut wf = Workflow::new();
    wf.add(1, TwoVarSource);
    wf.add(
        2,
        Combine::new(
            ("pair.fp", "x"),
            BinaryOp::Mul,
            ("pair.fp", "y"),
            ("prod.fp", "p"),
        ),
    );
    let got = collect(&mut wf, "prod.fp", "p");
    wf.run_with(RunOptions::default()).unwrap();

    let got = got.lock().clone();
    assert_eq!(got.len(), 2);
    for (step, values) in got.iter().enumerate() {
        for (i, v) in values.iter().enumerate() {
            let base = i as f64 + step as f64;
            assert_eq!(*v, base * (base * 2.0), "step {step} elem {i}");
        }
    }
}

#[test]
fn combine_handles_unequal_stream_lengths() {
    // Left ends after 2 steps, right would go to 4: Combine emits 2 and
    // drains the rest so the longer producer can finish.
    let mut wf = Workflow::new();
    wf.add_source("gen-a", 1, "a.fp", |step| {
        (step < 2).then(|| linear_source(step, 4, 1.0))
    });
    wf.add_source("gen-b", 1, "b.fp", |step| {
        (step < 4).then(|| linear_source(step, 4, 1.0))
    });
    wf.add(
        1,
        Combine::new(
            ("a.fp", "x"),
            BinaryOp::Sub,
            ("b.fp", "x"),
            ("d.fp", "diff"),
        ),
    );
    let got = collect(&mut wf, "d.fp", "diff");
    wf.run_with(RunOptions::default()).unwrap();
    let got = got.lock().clone();
    assert_eq!(got.len(), 2);
    assert!(got.iter().all(|v| v.iter().all(|&x| x == 0.0)));
}

#[test]
fn temporal_mean_smooths_over_the_window() {
    let mut wf = Workflow::new();
    // Constant spatial field whose amplitude steps 0, 1, 2, 3, 4.
    wf.add_source("gen", 2, "v.fp", |step| {
        (step < 5).then(|| {
            Variable::new(
                "x",
                Shape::linear("n", 6),
                Buffer::F64(vec![step as f64; 6]),
            )
            .unwrap()
        })
    });
    wf.add(3, TemporalMean::new(("v.fp", "x"), 3, ("smooth.fp", "m")));
    let got = collect(&mut wf, "smooth.fp", "m");
    assert!(wf.validate().is_empty());
    wf.run_with(RunOptions::default()).unwrap();

    let got = got.lock().clone();
    assert_eq!(got.len(), 5);
    // Means: 0, (0+1)/2, (0+1+2)/3, (1+2+3)/3, (2+3+4)/3.
    let expect = [0.0, 0.5, 1.0, 2.0, 3.0];
    for (step, values) in got.iter().enumerate() {
        assert!(
            values.iter().all(|&v| (v - expect[step]).abs() < 1e-12),
            "step {step}: {values:?} != {}",
            expect[step]
        );
    }
}

#[test]
fn temporal_mean_state_is_per_rank_partition() {
    // Different ranks hold different partitions; the smoothed output must
    // still be spatially correct (value = global index + step mean).
    let mut wf = Workflow::new();
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 4).then(|| linear_source(step, 9, 1.0))
    });
    wf.add(3, TemporalMean::new(("v.fp", "x"), 2, ("smooth.fp", "m")));
    let got = collect(&mut wf, "smooth.fp", "m");
    wf.run_with(RunOptions::default()).unwrap();
    let got = got.lock().clone();
    // Step 3: mean of steps 2 and 3 -> i + 2.5.
    let last = &got[3];
    for (i, v) in last.iter().enumerate() {
        assert_eq!(*v, i as f64 + 2.5);
    }
}

#[test]
fn joins_work_from_launch_scripts() {
    let script = r#"
        aprun -n 2 gromacs chains=6 len=6 steps=3 interval=4 &
        aprun -n 2 magnitude gromacs.fp coords r.fp radii &
        aprun -n 2 temporal-mean r.fp radii 2 rs.fp radii_smooth &
        aprun -n 1 combine r.fp radii sub rs.fp radii_smooth dev.fp deviation &
        aprun -n 1 stats dev.fp deviation st.fp summary &
        wait
    "#;
    let wf = smartblock::workflows::script_to_workflow(script).unwrap();
    assert_eq!(
        wf.labels(),
        vec!["gromacs", "magnitude", "temporal-mean", "combine", "stats"]
    );
    // Validate finds both problems in this deliberately flawed script:
    // st.fp has no consumer, and r.fp is consumed by temporal-mean and
    // combine under the same "default" reader group.
    let issues = wf.validate();
    assert_eq!(issues.len(), 2, "{issues:?}");
    assert!(issues.iter().any(|i| matches!(
        i,
        smartblock::AnalysisIssue::Wiring(smartblock::WiringIssue::NoReader { stream, .. })
            if stream == "st.fp"
    )));
    assert!(issues.iter().any(|i| matches!(
        i,
        smartblock::AnalysisIssue::Wiring(
            smartblock::WiringIssue::DuplicateSubscription { stream, group, readers }
        ) if stream == "r.fp" && group == "default" && readers.len() == 2
    )));
    // The rendered diagnostic reads as one sentence — a format-string wrap
    // used to inject a run of literal spaces before the group name.
    let dup = issues
        .iter()
        .find(|i| i.to_string().contains("subscribe"))
        .unwrap()
        .to_string();
    assert_eq!(
        dup,
        "components [\"temporal-mean\", \"combine\"] all subscribe to stream \"r.fp\" \
         as reader group \"default\"; give each a distinct group"
    );
    assert!(!dup.contains("  "), "double space in diagnostic: {dup:?}");
    // A corrected workflow would give one consumer a distinct reader group
    // and declare two groups on magnitude's writer; we only check static
    // assembly here.
}

#[test]
fn script_options_assemble_and_run_a_dag() {
    // The corrected version of the script above: magnitude declares two
    // subscriber groups (groups=2), combine subscribes to r.fp under its
    // own group (group=dev), and the stats output is consumed by a sink we
    // attach programmatically.
    let script = r#"
        aprun -n 2 gromacs chains=6 len=6 steps=3 interval=4 &
        aprun -n 2 magnitude gromacs.fp coords r.fp radii groups=2 &
        aprun -n 2 temporal-mean r.fp radii 2 rs.fp radii_smooth &
        aprun -n 1 combine r.fp radii sub rs.fp radii_smooth dev.fp deviation group=dev &
        aprun -n 1 stats dev.fp deviation st.fp summary &
        wait
    "#;
    let entries = smartblock::parse_script(script).unwrap();
    assert_eq!(
        entries[1].options.get("groups").map(String::as_str),
        Some("2")
    );
    assert_eq!(
        entries[3].options.get("group").map(String::as_str),
        Some("dev")
    );

    let mut wf = Workflow::new();
    for entry in &entries {
        wf.add(
            entry.nranks,
            smartblock::workflows::instantiate_entry(entry),
        );
    }
    let summaries = collect(&mut wf, "st.fp", "summary");
    // Combine's left subscription rides its own group now.
    let issues = wf.validate();
    assert!(issues.is_empty(), "{issues:?}");
    wf.run_with(RunOptions::default()).unwrap();

    let got = summaries.lock().clone();
    assert_eq!(got.len(), 3);
    // Deviation of the smoothed signal is 0 on step 0 (window holds one
    // step) and generally small thereafter; count covers every atom.
    assert_eq!(got[0][4] as usize, 36);
    assert!(got[0][3].abs() < 1e-12, "step-0 deviation must be zero");
}
