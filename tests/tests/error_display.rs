//! Rendering audit for the whole error taxonomy: every `Display` impl must
//! produce clean single-sentence lines. Wrapped format strings are an easy
//! way to leak a run of literal spaces into a diagnostic (the line
//! continuation keeps the next line's indentation unless it is escaped);
//! this suite renders at least one instance of every variant and rejects
//! consecutive double spaces.

use std::time::Duration;

use sb_comm::CommError;
use sb_data::{DType, DataError};
use smartblock::analysis::SpecError;
use smartblock::prelude::*;

/// No line of the rendered message may contain a run of two spaces.
/// Leading indentation of structured multi-line diagnostics (bullet lists)
/// is allowed; runs *inside* a sentence are not.
fn assert_clean(msg: &str) {
    assert!(!msg.is_empty(), "error rendered as an empty string");
    for line in msg.lines() {
        assert!(
            !line.trim_start().contains("  "),
            "double space in error message: {msg:?}"
        );
    }
}

#[test]
fn data_error_messages_are_clean() {
    let errors = vec![
        DataError::ShapeMismatch {
            data_len: 3,
            shape_len: 4,
        },
        DataError::DTypeMismatch {
            expected: DType::F64,
            found: DType::F32,
        },
        DataError::RegionOutOfBounds {
            detail: "region [2..5) exceeds extent 4".into(),
        },
        DataError::NoSuchDimension { index: 7, ndims: 2 },
        DataError::NoSuchLabel {
            label: "P_perp".into(),
            dim: 1,
        },
        DataError::MissingHeader { dim: 0 },
        DataError::MalformedHeader {
            dim: 1,
            expected: 4,
            found: 2,
        },
        DataError::ConfigParse {
            line: 3,
            detail: "unknown key".into(),
        },
        DataError::Container {
            detail: "truncated step record".into(),
        },
        DataError::Io {
            detail: "permission denied".into(),
        },
    ];
    for e in errors {
        assert_clean(&e.to_string());
    }
}

#[test]
fn stream_error_messages_are_clean() {
    let errors = vec![
        StreamError::Timeout {
            stream: "v.fp".into(),
            waiting_for: "a committed step".into(),
            timeout: Duration::from_millis(150),
            detail: "writers=1 readers=1 closed=false".into(),
        },
        StreamError::PeerGone {
            stream: "v.fp".into(),
            reason: "workflow aborted".into(),
        },
    ];
    for e in errors {
        assert_clean(&e.to_string());
    }
}

#[test]
fn comm_error_messages_are_clean() {
    let errors = vec![
        CommError::RankPanicked {
            rank: 2,
            message: "index out of bounds".into(),
        },
        CommError::ZeroRanks,
        CommError::PeerGone { from: 1 },
        CommError::InvalidWorkflow {
            issues: vec!["stream \"a.fp\" has no writer".into(), "cycle".into()],
        },
    ];
    for e in errors {
        assert_clean(&e.to_string());
    }
}

#[test]
fn component_and_workflow_error_messages_are_clean() {
    let stream = ComponentError::Stream {
        label: "magnitude".into(),
        step: 3,
        source: StreamError::PeerGone {
            stream: "r.fp".into(),
            reason: "poisoned".into(),
        },
    };
    let data = ComponentError::Data {
        label: "select".into(),
        step: 1,
        source: DataError::NoSuchLabel {
            label: "Q".into(),
            dim: 2,
        },
    };
    let injected = ComponentError::Injected {
        label: "histogram".into(),
        rank: 0,
        step: 2,
    };
    let panicked = ComponentError::Panicked {
        label: "combine".into(),
        rank: 1,
        message: "assertion failed".into(),
    };
    let launch = ComponentError::Launch {
        label: "stats".into(),
        source: CommError::ZeroRanks,
    };
    let components = vec![stream, data, injected, panicked.clone(), launch];
    for e in &components {
        assert_clean(&e.to_string());
        assert_clean(&StepError::Data(DataError::MissingHeader { dim: 0 }).to_string());
    }
    let workflows = vec![
        WorkflowError::Invalid {
            issues: vec!["issue one".into(), "issue two".into()],
        },
        WorkflowError::ComponentFailed {
            label: "combine".into(),
            attempts: 3,
            error: panicked,
        },
        WorkflowError::Launch(CommError::ZeroRanks),
    ];
    for e in workflows {
        assert_clean(&e.to_string());
    }
}

#[test]
fn analysis_issue_messages_are_clean() {
    let wiring = vec![
        WiringIssue::NoWriter {
            stream: "a.fp".into(),
            readers: vec!["magnitude".into()],
        },
        WiringIssue::NoReader {
            stream: "m.fp".into(),
            writers: vec!["magnitude".into()],
        },
        WiringIssue::MultipleWriters {
            stream: "m.fp".into(),
            writers: vec!["a".into(), "b".into()],
        },
        WiringIssue::DuplicateSubscription {
            stream: "r.fp".into(),
            group: "default".into(),
            readers: vec!["temporal-mean".into(), "combine".into()],
        },
    ];
    for w in wiring {
        assert_clean(&AnalysisIssue::Wiring(w).to_string());
    }
    let specs = vec![
        SpecError::UnknownArray {
            array: "q".into(),
            available: vec!["plasma".into()],
        },
        SpecError::UnknownLabel {
            dim: 2,
            label: "Q_perp".into(),
            available: vec!["P_perp".into()],
        },
        SpecError::AxisOutOfBounds { axis: 7, ndims: 3 },
        SpecError::RankMismatch {
            expected: 1,
            got: 2,
        },
        SpecError::ShapeMismatch {
            left: "(n=36, d=3)".into(),
            right: "(n=64, d=3)".into(),
        },
        SpecError::InvalidAxes {
            detail: "permutation [1, 0] has length 2, array has rank 3".into(),
        },
        SpecError::DegenerateBins {
            bins: 4096,
            elements: 4,
        },
    ];
    for s in &specs {
        assert_clean(&s.to_string());
        assert_clean(
            &AnalysisIssue::Contract {
                component: "select".into(),
                stream: "gtcp.fp".into(),
                error: s.clone(),
            }
            .to_string(),
        );
    }
    let others = vec![
        AnalysisIssue::Cycle {
            components: vec!["magnitude".into(), "magnitude-2".into()],
        },
        AnalysisIssue::OverDecomposed {
            component: "select".into(),
            stream: "gtcp.fp".into(),
            array: "plasma".into(),
            dim: "toroidal".into(),
            extent: 4,
            nranks: 8,
        },
    ];
    for i in others {
        assert_clean(&i.to_string());
    }
}
