//! Failure-path behaviour: mis-wired workflows, contract violations and
//! group mismatches must fail *loudly and diagnosably*, never hang or
//! corrupt — the moral equivalent of MPI's abort-on-error discipline.

use std::time::Duration;

use sb_data::{Buffer, Shape, Variable};
use sb_stream::{StreamHub, WriterOptions};
use smartblock::prelude::*;

fn tiny_source(step: u64) -> Variable {
    Variable::new(
        "x",
        Shape::linear("n", 4),
        Buffer::F64(vec![step as f64; 4]),
    )
    .unwrap()
}

/// A workflow whose sink asks for a variable that never exists: the
/// component panics with the array name, and the workflow surfaces it.
#[test]
fn missing_array_is_a_diagnosable_error() {
    let hub = StreamHub::with_timeout(Duration::from_millis(300));
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 1).then(|| tiny_source(step))
    });
    wf.add(1, Magnitude::new(("v.fp", "wrong_name"), ("m.fp", "y")));
    let err = wf.run().unwrap_err().to_string();
    assert!(err.contains("panicked"), "{err}");
}

/// Magnitude on 1-d input violates its 2-d contract.
#[test]
fn wrong_rank_input_is_rejected() {
    let hub = StreamHub::with_timeout(Duration::from_millis(300));
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 1).then(|| tiny_source(step))
    });
    wf.add(1, Magnitude::new(("v.fp", "x"), ("m.fp", "y")));
    let err = wf.run().unwrap_err().to_string();
    assert!(err.contains("panicked"), "{err}");
}

/// Select with a quantity name the header does not contain.
#[test]
fn unknown_label_is_rejected() {
    let hub = StreamHub::with_timeout(Duration::from_millis(300));
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 1).then(|| {
            Variable::new(
                "atoms",
                Shape::of(&[("n", 2), ("p", 2)]),
                Buffer::F64(vec![0.0; 4]),
            )
            .unwrap()
            .with_labels(1, &["a", "b"])
            .unwrap()
        })
    });
    wf.add(
        1,
        Select::new(("v.fp", "atoms"), 1, ["nonexistent"], ("s.fp", "y")),
    );
    let err = wf.run().unwrap_err().to_string();
    assert!(err.contains("panicked"), "{err}");
}

/// Ranks of one writer group must agree on the group size.
#[test]
fn writer_group_size_disagreement_panics() {
    let hub = StreamHub::new();
    let _w1 = hub.open_writer("s.fp", 0, 2, WriterOptions::default());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _w2 = hub.open_writer("s.fp", 0, 3, WriterOptions::default());
    }));
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("disagree on group size"), "{msg}");
}

/// Ranks of one writer group must agree on buffering policy.
#[test]
fn writer_options_disagreement_panics() {
    let hub = StreamHub::new();
    let _w1 = hub.open_writer("s.fp", 0, 2, WriterOptions::buffered(2));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _w2 = hub.open_writer("s.fp", 1, 2, WriterOptions::rendezvous());
    }));
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("disagree on options"), "{msg}");
}

/// Ranks of one reader group must agree on the group size; distinct groups
/// may differ.
#[test]
fn reader_group_size_disagreement_panics() {
    let hub = StreamHub::new();
    let _r1 = hub.open_reader_grouped("s.fp", "g", 0, 2);
    let _other = hub.open_reader_grouped("s.fp", "h", 0, 5); // fine: new group
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _r2 = hub.open_reader_grouped("s.fp", "g", 1, 3);
    }));
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("disagree on group size"), "{msg}");
}

/// Step protocol misuse on the writer side.
#[test]
fn writer_protocol_misuse_panics() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("s.fp", 0, 1, WriterOptions::default());
    // put outside a step
    let var = tiny_source(0);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        w.put_whole(var);
    }));
    assert!(r.is_err());
    // double begin
    w.begin_step();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        w.begin_step();
    }));
    assert!(r.is_err());
}

/// Step protocol misuse on the reader side.
#[test]
fn reader_protocol_misuse_panics() {
    let hub = StreamHub::new();
    let mut r = hub.open_reader("s.fp", 0, 1);
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        r.end_step(); // without begin
    }));
    assert!(res.is_err());
}

/// A chunk whose region exceeds the declared global shape is rejected at
/// construction, before it can corrupt a stream.
#[test]
fn oversized_chunk_is_rejected_at_construction() {
    let meta = sb_data::VariableMeta::new("x", Shape::linear("n", 4), sb_data::DType::F64);
    let bad = sb_data::Chunk::new(
        meta,
        sb_data::Region::new(vec![2], vec![3]),
        Buffer::F64(vec![0.0; 3]),
    );
    assert!(bad.is_err());
}

/// Writer chunks that overlap produce a coverage error on read, not silent
/// double-counting.
#[test]
fn overlapping_writer_chunks_fail_the_read() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("s.fp", 0, 1, WriterOptions::default());
    let meta = sb_data::VariableMeta::new("x", Shape::linear("n", 4), sb_data::DType::F64);
    w.begin_step();
    w.put(
        sb_data::Chunk::new(
            meta.clone(),
            sb_data::Region::new(vec![0], vec![3]),
            Buffer::F64(vec![1.0; 3]),
        )
        .unwrap(),
    );
    w.put(
        sb_data::Chunk::new(
            meta,
            sb_data::Region::new(vec![2], vec![2]),
            Buffer::F64(vec![2.0; 2]),
        )
        .unwrap(),
    );
    w.end_step();
    let mut r = hub.open_reader("s.fp", 0, 1);
    r.begin_step();
    let err = r.get_whole("x").unwrap_err().to_string();
    assert!(err.contains("overlap"), "{err}");
    r.end_step();
    w.close();
}

/// Writer chunks whose overlap exactly compensates a hole (sum of
/// coverage equals the box size) must still be rejected.
#[test]
fn compensating_overlap_and_hole_is_rejected() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("s.fp", 0, 1, WriterOptions::default());
    let meta = sb_data::VariableMeta::new("x", Shape::linear("n", 4), sb_data::DType::F64);
    w.begin_step();
    // Chunks [0..2) and [1..3): 2 + 2 = 4 elements covered, but element 3
    // is a hole and element 1 is written twice.
    w.put(
        sb_data::Chunk::new(
            meta.clone(),
            sb_data::Region::new(vec![0], vec![2]),
            Buffer::F64(vec![1.0; 2]),
        )
        .unwrap(),
    );
    w.put(
        sb_data::Chunk::new(
            meta,
            sb_data::Region::new(vec![1], vec![2]),
            Buffer::F64(vec![2.0; 2]),
        )
        .unwrap(),
    );
    w.end_step();
    let mut r = hub.open_reader("s.fp", 0, 1);
    r.begin_step();
    let err = r.get_whole("x").unwrap_err().to_string();
    assert!(err.contains("overlap"), "{err}");
    r.end_step();
    w.close();
}

/// Combine rejects shape-mismatched inputs loudly.
#[test]
fn combine_shape_mismatch_panics() {
    let hub = StreamHub::with_timeout(Duration::from_millis(500));
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen-a", 1, "a.fp", |step| {
        (step < 1).then(|| tiny_source(step))
    });
    wf.add_source("gen-b", 1, "b.fp", |step| {
        (step < 1)
            .then(|| Variable::new("x", Shape::linear("n", 7), Buffer::F64(vec![0.0; 7])).unwrap())
    });
    wf.add(
        1,
        Combine::new(("a.fp", "x"), BinaryOp::Add, ("b.fp", "x"), ("c.fp", "y")),
    );
    let err = wf.run().unwrap_err().to_string();
    assert!(err.contains("panicked"), "{err}");
}

/// A mis-wired workflow (a reader on a stream nobody writes) must fail
/// *before* launch: `run()` returns the validation report immediately
/// instead of spawning ranks that block until the hub timeout.
#[test]
fn run_fails_fast_on_missing_writer() {
    // Deliberately use a workflow whose hub timeout is far longer than the
    // test budget: if run() launched the ranks, the dangling reader would
    // stall for minutes. Fail-fast means we never get that far.
    let start = std::time::Instant::now();
    let mut wf = Workflow::new();
    wf.add(1, Magnitude::new(("never-written.fp", "x"), ("m.fp", "y")));
    wf.add_sink("sink", 1, "m.fp", |_, _| {});
    let err = wf.run().unwrap_err().to_string();
    assert!(err.contains("static validation"), "{err}");
    assert!(err.contains("never-written.fp"), "{err}");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "validation must not launch the workflow"
    );
}

/// The same mis-wired workflow still launches under `run_unchecked()` —
/// the escape hatch for experiments the analyzer cannot model — and dies
/// at runtime with the stream's timeout diagnostic instead.
#[test]
fn run_unchecked_bypasses_validation() {
    let hub = StreamHub::with_timeout(Duration::from_millis(150));
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 1).then(|| tiny_source(step))
    });
    wf.add(1, Magnitude::new(("v.fp", "x"), ("m.fp", "y")));
    // m.fp has no reader (a warning) and the magnitude input is 1-d (a
    // runtime panic the opaque source hides from the analyzer): the
    // unchecked run reaches the runtime failure.
    let err = wf.run_unchecked().unwrap_err().to_string();
    assert!(err.contains("panicked"), "{err}");
}

/// A reader on a stream nobody ever writes times out with a diagnostic
/// that names the stream.
#[test]
fn dangling_reader_times_out_with_stream_name() {
    let hub = StreamHub::with_timeout(Duration::from_millis(150));
    let mut r = hub.open_reader("never-written.fp", 0, 1);
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = r.begin_step();
    }));
    let msg = *res.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("never-written.fp"), "{msg}");
    assert!(msg.contains("timed out"), "{msg}");
}
