//! Failure-path behaviour: mis-wired workflows, contract violations and
//! group mismatches must fail *loudly and diagnosably*, never hang or
//! corrupt — the moral equivalent of MPI's abort-on-error discipline.
//!
//! The chaos section exercises the supervisor against seeded fault plans:
//! stalls degrade instead of hanging, kills restart under backoff with
//! golden outputs intact, and the same seed reproduces the same run.
//! `SB_CHAOS_SEED` overrides the default seed so CI can sweep several.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sb_data::{Buffer, Shape, Variable};
use smartblock::prelude::*;

fn tiny_source(step: u64) -> Variable {
    Variable::new(
        "x",
        Shape::linear("n", 4),
        Buffer::F64(vec![step as f64; 4]),
    )
    .unwrap()
}

/// A workflow whose transform asks for a variable that never exists: the
/// component returns a typed data error naming the missing array, and the
/// workflow surfaces it to the `run_with` caller.
#[test]
fn missing_array_is_a_diagnosable_error() {
    let hub = StreamHub::with_timeout(Duration::from_millis(300));
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 1).then(|| tiny_source(step))
    });
    wf.add(1, Magnitude::new(("v.fp", "wrong_name"), ("m.fp", "y")));
    let err = wf.run_with(RunOptions::default()).unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(
            &err,
            WorkflowError::ComponentFailed {
                label,
                error: ComponentError::Data { .. },
                ..
            } if label == "magnitude"
        ),
        "{err:?}"
    );
    assert!(msg.contains("wrong_name"), "{msg}");
}

/// Magnitude on 1-d input violates its 2-d contract: a typed data error,
/// not a panic.
#[test]
fn wrong_rank_input_is_rejected() {
    let hub = StreamHub::with_timeout(Duration::from_millis(300));
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 1).then(|| tiny_source(step))
    });
    wf.add(1, Magnitude::new(("v.fp", "x"), ("m.fp", "y")));
    let err = wf.run_with(RunOptions::default()).unwrap_err();
    assert!(
        matches!(
            &err,
            WorkflowError::ComponentFailed {
                error: ComponentError::Data { .. },
                ..
            }
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("2-d"), "{err}");
}

/// Select with a quantity name the header does not contain.
#[test]
fn unknown_label_is_rejected() {
    let hub = StreamHub::with_timeout(Duration::from_millis(300));
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 1).then(|| {
            Variable::new(
                "atoms",
                Shape::of(&[("n", 2), ("p", 2)]),
                Buffer::F64(vec![0.0; 4]),
            )
            .unwrap()
            .with_labels(1, &["a", "b"])
            .unwrap()
        })
    });
    wf.add(
        1,
        Select::new(("v.fp", "atoms"), 1, ["nonexistent"], ("s.fp", "y")),
    );
    let err = wf.run_with(RunOptions::default()).unwrap_err();
    assert!(
        matches!(
            &err,
            WorkflowError::ComponentFailed {
                error: ComponentError::Data { .. },
                ..
            }
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("nonexistent"), "{err}");
}

/// Ranks of one writer group must agree on the group size.
#[test]
fn writer_group_size_disagreement_panics() {
    let hub = StreamHub::new();
    let _w1 = hub.open_writer("s.fp", 0, 2, WriterOptions::default());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _w2 = hub.open_writer("s.fp", 0, 3, WriterOptions::default());
    }));
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("disagree on group size"), "{msg}");
}

/// Ranks of one writer group must agree on buffering policy.
#[test]
fn writer_options_disagreement_panics() {
    let hub = StreamHub::new();
    let _w1 = hub.open_writer("s.fp", 0, 2, WriterOptions::buffered(2));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _w2 = hub.open_writer("s.fp", 1, 2, WriterOptions::rendezvous());
    }));
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("disagree on options"), "{msg}");
}

/// Ranks of one reader group must agree on the group size; distinct groups
/// may differ.
#[test]
fn reader_group_size_disagreement_panics() {
    let hub = StreamHub::new();
    let _r1 = hub.open_reader_grouped("s.fp", "g", 0, 2);
    let _other = hub.open_reader_grouped("s.fp", "h", 0, 5); // fine: new group
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _r2 = hub.open_reader_grouped("s.fp", "g", 1, 3);
    }));
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("disagree on group size"), "{msg}");
}

/// Step protocol misuse on the writer side. Contract violations stay
/// panics — only peer failures (timeout, peer gone) became typed errors.
#[test]
fn writer_protocol_misuse_panics() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("s.fp", 0, 1, WriterOptions::default());
    // put outside a step
    let var = tiny_source(0);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        w.put_whole(var);
    }));
    assert!(r.is_err());
    // double begin
    w.begin_step().unwrap();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = w.begin_step();
    }));
    assert!(r.is_err());
}

/// Step protocol misuse on the reader side.
#[test]
fn reader_protocol_misuse_panics() {
    let hub = StreamHub::new();
    let mut r = hub.open_reader("s.fp", 0, 1);
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        r.end_step(); // without begin
    }));
    assert!(res.is_err());
}

/// A chunk whose region exceeds the declared global shape is rejected at
/// construction, before it can corrupt a stream.
#[test]
fn oversized_chunk_is_rejected_at_construction() {
    let meta = sb_data::VariableMeta::new("x", Shape::linear("n", 4), sb_data::DType::F64);
    let bad = sb_data::Chunk::new(
        meta,
        sb_data::Region::new(vec![2], vec![3]),
        Buffer::F64(vec![0.0; 3]),
    );
    assert!(bad.is_err());
}

/// Writer chunks that overlap produce a coverage error on read, not silent
/// double-counting.
#[test]
fn overlapping_writer_chunks_fail_the_read() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("s.fp", 0, 1, WriterOptions::default());
    let meta = sb_data::VariableMeta::new("x", Shape::linear("n", 4), sb_data::DType::F64);
    w.begin_step().unwrap();
    w.put(
        sb_data::Chunk::new(
            meta.clone(),
            sb_data::Region::new(vec![0], vec![3]),
            Buffer::F64(vec![1.0; 3]),
        )
        .unwrap(),
    );
    w.put(
        sb_data::Chunk::new(
            meta,
            sb_data::Region::new(vec![2], vec![2]),
            Buffer::F64(vec![2.0; 2]),
        )
        .unwrap(),
    );
    w.end_step().unwrap();
    let mut r = hub.open_reader("s.fp", 0, 1);
    r.begin_step().unwrap();
    let err = r.get_whole("x").unwrap_err().to_string();
    assert!(err.contains("overlap"), "{err}");
    r.end_step();
    w.close();
}

/// Writer chunks whose overlap exactly compensates a hole (sum of
/// coverage equals the box size) must still be rejected.
#[test]
fn compensating_overlap_and_hole_is_rejected() {
    let hub = StreamHub::new();
    let mut w = hub.open_writer("s.fp", 0, 1, WriterOptions::default());
    let meta = sb_data::VariableMeta::new("x", Shape::linear("n", 4), sb_data::DType::F64);
    w.begin_step().unwrap();
    // Chunks [0..2) and [1..3): 2 + 2 = 4 elements covered, but element 3
    // is a hole and element 1 is written twice.
    w.put(
        sb_data::Chunk::new(
            meta.clone(),
            sb_data::Region::new(vec![0], vec![2]),
            Buffer::F64(vec![1.0; 2]),
        )
        .unwrap(),
    );
    w.put(
        sb_data::Chunk::new(
            meta,
            sb_data::Region::new(vec![1], vec![2]),
            Buffer::F64(vec![2.0; 2]),
        )
        .unwrap(),
    );
    w.end_step().unwrap();
    let mut r = hub.open_reader("s.fp", 0, 1);
    r.begin_step().unwrap();
    let err = r.get_whole("x").unwrap_err().to_string();
    assert!(err.contains("overlap"), "{err}");
    r.end_step();
    w.close();
}

/// Combine rejects shape-mismatched inputs loudly: the rank's assertion
/// panic is caught by the supervisor and surfaced as a typed error.
#[test]
fn combine_shape_mismatch_is_caught_as_panic() {
    let hub = StreamHub::with_timeout(Duration::from_millis(500));
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen-a", 1, "a.fp", |step| {
        (step < 1).then(|| tiny_source(step))
    });
    wf.add_source("gen-b", 1, "b.fp", |step| {
        (step < 1)
            .then(|| Variable::new("x", Shape::linear("n", 7), Buffer::F64(vec![0.0; 7])).unwrap())
    });
    wf.add(
        1,
        Combine::new(("a.fp", "x"), BinaryOp::Add, ("b.fp", "x"), ("c.fp", "y")),
    );
    let err = wf.run_with(RunOptions::default()).unwrap_err();
    assert!(
        matches!(
            &err,
            WorkflowError::ComponentFailed {
                error: ComponentError::Panicked { .. },
                ..
            }
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("panicked"), "{err}");
}

/// A mis-wired workflow (a reader on a stream nobody writes) must fail
/// *before* launch: `run_with` returns the validation report immediately
/// instead of spawning ranks that block until the hub timeout.
#[test]
fn run_fails_fast_on_missing_writer() {
    // Deliberately use a workflow whose hub timeout is far longer than the
    // test budget: if run_with launched the ranks, the dangling reader
    // would stall for minutes. Fail-fast means we never get that far.
    let start = std::time::Instant::now();
    let mut wf = Workflow::new();
    wf.add(1, Magnitude::new(("never-written.fp", "x"), ("m.fp", "y")));
    wf.add_sink("sink", 1, "m.fp", |_, _| {});
    let err = wf.run_with(RunOptions::default()).unwrap_err();
    assert!(matches!(&err, WorkflowError::Invalid { .. }), "{err:?}");
    let msg = err.to_string();
    assert!(msg.contains("static validation"), "{msg}");
    assert!(msg.contains("never-written.fp"), "{msg}");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "validation must not launch the workflow"
    );
}

/// The same class of mis-wired workflow still launches under
/// `Validation::Skip` — the escape hatch for experiments the analyzer
/// cannot model — and dies at runtime with a typed error instead.
#[test]
fn skipped_validation_reaches_the_runtime_failure() {
    let hub = StreamHub::with_timeout(Duration::from_millis(150));
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 1).then(|| tiny_source(step))
    });
    wf.add(1, Magnitude::new(("v.fp", "x"), ("m.fp", "y")));
    // m.fp has no reader (a warning) and the magnitude input is 1-d (a
    // runtime error the opaque source hides from the analyzer): the
    // unvalidated run reaches the runtime failure.
    let err = wf
        .run_with(RunOptions::new().with_validation(Validation::Skip))
        .unwrap_err();
    assert!(
        matches!(&err, WorkflowError::ComponentFailed { .. }),
        "{err:?}"
    );
    assert!(err.to_string().contains("2-d"), "{err}");
}

/// A reader on a stream nobody ever writes times out with a *typed* error
/// that names the stream — blocking paths no longer panic on timeout.
#[test]
fn dangling_reader_times_out_with_stream_name() {
    let hub = StreamHub::with_timeout(Duration::from_millis(150));
    let mut r = hub.open_reader("never-written.fp", 0, 1);
    let err = r.begin_step().unwrap_err();
    assert!(matches!(&err, StreamError::Timeout { .. }), "{err:?}");
    let msg = err.to_string();
    assert!(msg.contains("never-written.fp"), "{msg}");
    assert!(msg.contains("timed out"), "{msg}");
}

// ---------------------------------------------------------------------------
// Seeded chaos: deterministic fault injection against the supervisor.
// ---------------------------------------------------------------------------

/// The chaos seed, overridable so CI can sweep several fixed seeds.
fn chaos_seed() -> u64 {
    std::env::var("SB_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(41)
}

use sb_integration_tests::chaos_coords as coords;

/// gen -> magnitude -> collect, with the collected per-step outputs handed
/// back so tests can compare them against a golden run.
fn chaos_pipeline(steps: u64) -> (Workflow, Arc<Mutex<Vec<Vec<f64>>>>) {
    chaos_pipeline_on(StreamHub::new(), steps)
}

/// [`chaos_pipeline`] on an explicit hub, so the same seeded plans run over
/// the in-proc backend and over a TCP broker.
fn chaos_pipeline_on(hub: Arc<StreamHub>, steps: u64) -> (Workflow, Arc<Mutex<Vec<Vec<f64>>>>) {
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen", 1, "c.fp", move |step| {
        (step < steps).then(|| coords(step, 8))
    });
    let out = analysis_side(&mut wf);
    (wf, out)
}

/// Adds the magnitude -> collect tail of the chaos pipeline to `wf` and
/// returns the collected outputs. The cross-process tests use it alone,
/// with the source running in a `component_host` process instead.
fn analysis_side(wf: &mut Workflow) -> Arc<Mutex<Vec<Vec<f64>>>> {
    wf.add(1, Magnitude::new(("c.fp", "coords"), ("r.fp", "radii")));
    let out: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    wf.add_sink("collect", 1, "r.fp", move |_s, vars| {
        sink.lock().push(vars["radii"].data.to_f64_vec());
    });
    out
}

/// A tiny fixed-width binning of every collected value — the "golden
/// histogram" the chaos assertions compare across runs.
fn bin_histogram(rows: &[Vec<f64>]) -> Vec<u64> {
    let mut bins = vec![0u64; 16];
    for v in rows.iter().flatten() {
        bins[((v / 4.0) as usize).min(15)] += 1;
    }
    bins
}

/// A source that stalls (abandons its output without EOS) must not hang
/// the workflow: the downstream components time out with typed errors and
/// their Degrade policy lets the run finish with what was produced.
#[test]
fn stalled_source_degrades_downstream_instead_of_hanging() {
    let start = std::time::Instant::now();
    let (mut wf, out) = chaos_pipeline(4);
    wf.hub()
        .install_faults(FaultPlan::seeded(chaos_seed()).stall_at("gen", 1));
    wf.set_fault_policy("magnitude", FaultPolicy::degrade());
    wf.set_fault_policy("collect", FaultPolicy::degrade());
    let report = wf
        .run_with(RunOptions::new().with_hub_timeout(Duration::from_millis(300)))
        .unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "stall must resolve via timeout, not hang"
    );
    // The step committed before the stall made it all the way through.
    assert_eq!(out.lock().len(), 1);
    // Magnitude is the component directly starved by the stalled stream;
    // it must be reported degraded (the sink may degrade too, or finish
    // cleanly off magnitude's forced end-of-stream — both are legal).
    assert!(
        report.degraded().contains(&"magnitude"),
        "degraded: {:?}",
        report.degraded()
    );
}

/// A killed transform under a Restart policy resumes where the last
/// complete step left off: the workflow completes, the report counts the
/// restart, and the output — values and histogram — matches the no-fault
/// golden run exactly.
#[test]
fn killed_transform_restarts_and_matches_golden_output() {
    let (golden_wf, golden_out) = chaos_pipeline(4);
    golden_wf.run_with(RunOptions::default()).unwrap();
    let golden = golden_out.lock().clone();
    assert_eq!(golden.len(), 4);

    let (mut wf, out) = chaos_pipeline(4);
    wf.hub()
        .install_faults(FaultPlan::seeded(chaos_seed()).kill_at("magnitude", 1));
    wf.set_fault_policy(
        "magnitude",
        FaultPolicy::restart(2).with_backoff(Duration::from_millis(5)),
    );
    let report = wf.run_with(RunOptions::default()).unwrap();
    let mag = report.component("magnitude").unwrap();
    assert_eq!(mag.restarts(), 1, "exactly one restart: {:?}", mag.outcome);
    assert!(mag.outcome.is_completed(), "{:?}", mag.outcome);
    let got = out.lock().clone();
    assert_eq!(got, golden, "restart must not lose or duplicate steps");
    assert_eq!(bin_histogram(&got), bin_histogram(&golden));
}

/// The default Abort policy propagates the injected fault as a typed
/// `ComponentError::Injected` to the `run_with` caller.
#[test]
fn abort_policy_surfaces_injected_fault_to_caller() {
    let (wf, _out) = chaos_pipeline(3);
    wf.hub()
        .install_faults(FaultPlan::seeded(chaos_seed()).kill_at("magnitude", 1));
    let err = wf.run_with(RunOptions::default()).unwrap_err();
    let msg = err.to_string();
    match &err {
        WorkflowError::ComponentFailed {
            label,
            attempts,
            error,
        } => {
            assert_eq!(label, "magnitude");
            assert_eq!(*attempts, 1);
            assert!(
                matches!(error, ComponentError::Injected { .. }),
                "{error:?}"
            );
        }
        other => panic!("expected ComponentFailed, got {other:?}"),
    }
    assert!(msg.contains("injected fault"), "{msg}");
}

/// Two invocations of the same seeded fault plan are byte-for-byte
/// reproducible: same restart counts, same collected values, same final
/// histogram.
#[test]
fn seeded_chaos_runs_are_reproducible() {
    let run = |seed: u64| -> (u32, Vec<Vec<f64>>) {
        let (mut wf, out) = chaos_pipeline(4);
        wf.hub().install_faults(
            FaultPlan::seeded(seed)
                .delay_jitter("gen", Duration::from_millis(2))
                .kill_at("magnitude", 2),
        );
        wf.set_fault_policy(
            "magnitude",
            FaultPolicy::restart(3).with_backoff(Duration::from_millis(5)),
        );
        let report = wf.run_with(RunOptions::default()).unwrap();
        let got = out.lock().clone();
        (report.restarts(), got)
    };
    let seed = chaos_seed();
    let (restarts_a, got_a) = run(seed);
    let (restarts_b, got_b) = run(seed);
    assert_eq!(restarts_a, restarts_b, "restart counts must reproduce");
    assert_eq!(got_a, got_b, "collected outputs must reproduce");
    assert_eq!(bin_histogram(&got_a), bin_histogram(&got_b));
    assert!(restarts_a >= 1, "the kill directive must actually fire");
}

// ---------------------------------------------------------------------------
// Chaos across the remote backends: the same seeded plans behind a loopback
// TCP broker and a shared-memory ring broker, and component processes that
// really die.
// ---------------------------------------------------------------------------

use sb_stream::tcp::TcpBroker;
use sb_stream::ShmBroker;

/// A fresh rendezvous directory for an shm broker (no tempfile crate in
/// tree; pid plus a counter keeps parallel test binaries apart).
fn shm_scratch(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sb-chaos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shm_broker(tag: &str) -> ShmBroker {
    let dir = shm_scratch(tag);
    ShmBroker::bind(dir.to_str().unwrap()).unwrap()
}

/// One seeded kill/restart run of the chaos pipeline on `hub`: installs
/// the kill-at-step-1 plan, rides it out under a Restart policy, and
/// returns the restart count plus collected outputs.
fn seeded_kill_restart_run(hub: Arc<StreamHub>) -> (u32, Vec<Vec<f64>>) {
    let (mut wf, out) = chaos_pipeline_on(hub, 4);
    wf.hub()
        .install_faults(FaultPlan::seeded(chaos_seed()).kill_at("magnitude", 1));
    wf.set_fault_policy(
        "magnitude",
        FaultPolicy::restart(2).with_backoff(Duration::from_millis(5)),
    );
    let report = wf.run_with(RunOptions::default()).unwrap();
    let mag = report.component("magnitude").unwrap();
    assert!(mag.outcome.is_completed(), "{:?}", mag.outcome);
    let got = out.lock().clone();
    (report.restarts(), got)
}

/// Asserts a remote backend's seeded kill/restart outcome matches in-proc:
/// same restart count, same collected values, same histogram — the
/// supervisor cannot tell the backends apart.
fn assert_backend_reproduces_chaos(remote: Arc<StreamHub>, fabric: &str) {
    let (inproc_restarts, inproc_out) = seeded_kill_restart_run(StreamHub::new());
    let (remote_restarts, remote_out) = seeded_kill_restart_run(remote);

    assert!(
        inproc_restarts >= 1,
        "the kill directive must actually fire"
    );
    assert_eq!(
        inproc_restarts, remote_restarts,
        "restart counts must agree across backends ({fabric})"
    );
    assert_eq!(
        inproc_out, remote_out,
        "collected outputs must agree across backends ({fabric})"
    );
    assert_eq!(bin_histogram(&inproc_out), bin_histogram(&remote_out));
}

/// The kill/restart plan behind a loopback TCP broker reproduces the
/// in-proc outcome exactly.
#[test]
fn tcp_backend_reproduces_inproc_chaos_outcomes() {
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    assert_backend_reproduces_chaos(StreamHub::connect(&broker.url()).unwrap(), "tcp");
}

/// The same seeded plan behind a shared-memory ring broker reproduces the
/// in-proc outcome exactly.
#[test]
fn shm_backend_reproduces_inproc_chaos_outcomes() {
    let broker = shm_broker("kill");
    assert_backend_reproduces_chaos(StreamHub::connect(&broker.url()).unwrap(), "shm");
}

/// Compression must be invisible to the supervisor: clients that negotiate
/// v2 + LZ frames under the same seeded kill plan reproduce the in-proc
/// restart count, collected values and histogram bit-for-bit. A codec that
/// survives mid-step kills and restarts is a codec that cannot corrupt.
#[test]
fn compressed_tcp_backend_reproduces_inproc_chaos_outcomes() {
    let run = |hub: Arc<StreamHub>| {
        let (mut wf, out) = chaos_pipeline_on(hub, 4);
        wf.hub()
            .install_faults(FaultPlan::seeded(chaos_seed()).kill_at("magnitude", 1));
        wf.set_fault_policy(
            "magnitude",
            FaultPolicy::restart(2).with_backoff(Duration::from_millis(5)),
        );
        let report = wf.run_with(RunOptions::default()).unwrap();
        let mag = report.component("magnitude").unwrap();
        assert!(mag.outcome.is_completed(), "{:?}", mag.outcome);
        let got = out.lock().clone();
        (report.restarts(), got)
    };
    let (inproc_restarts, inproc_out) = run(StreamHub::new());
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    let lz = sb_stream::TcpOptions::default().with_compression(sb_stream::Compression::Lz);
    let (lz_restarts, lz_out) = run(StreamHub::connect_with(&broker.url(), lz).unwrap());

    assert!(
        inproc_restarts >= 1,
        "the kill directive must actually fire"
    );
    assert_eq!(
        inproc_restarts, lz_restarts,
        "restart counts must agree with compression on the wire"
    );
    assert_eq!(
        inproc_out, lz_out,
        "collected outputs must agree with compression on the wire"
    );
    assert_eq!(bin_histogram(&inproc_out), bin_histogram(&lz_out));
}

/// One seeded stall/degrade run of the chaos pipeline on `hub`: the
/// committed prefix and whether magnitude degraded.
fn seeded_stall_run(hub: Arc<StreamHub>) -> (Vec<Vec<f64>>, bool) {
    let (mut wf, out) = chaos_pipeline_on(hub, 4);
    wf.hub()
        .install_faults(FaultPlan::seeded(chaos_seed()).stall_at("gen", 1));
    wf.set_fault_policy("magnitude", FaultPolicy::degrade());
    wf.set_fault_policy("collect", FaultPolicy::degrade());
    let start = std::time::Instant::now();
    let report = wf
        .run_with(RunOptions::new().with_hub_timeout(Duration::from_secs(120)))
        .unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "a noisy disconnect must surface promptly, not wait out the timeout"
    );
    let degraded = report.degraded().contains(&"magnitude");
    let collected = out.lock().clone();
    (collected, degraded)
}

/// The stall plan over TCP degrades exactly like in-proc: the noisy
/// disconnect crosses the wire, downstream observes PeerGone promptly, and
/// the Degrade policy salvages the committed prefix on both backends.
#[test]
fn tcp_backend_reproduces_inproc_stall_degradation() {
    let (inproc_out, inproc_degraded) = seeded_stall_run(StreamHub::new());
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    let (tcp_out, tcp_degraded) = seeded_stall_run(StreamHub::connect(&broker.url()).unwrap());

    assert_eq!(inproc_out.len(), 1, "the step before the stall survives");
    assert_eq!(inproc_out, tcp_out, "backends disagree on salvaged output");
    assert!(inproc_degraded && tcp_degraded);
}

/// The stall plan over the shared-memory fabric degrades the same way:
/// the noisy disconnect crosses the ring as a poison verb and PeerGone
/// surfaces promptly.
#[test]
fn shm_backend_reproduces_inproc_stall_degradation() {
    let (inproc_out, inproc_degraded) = seeded_stall_run(StreamHub::new());
    let broker = shm_broker("stall");
    let (shm_out, shm_degraded) = seeded_stall_run(StreamHub::connect(&broker.url()).unwrap());

    assert_eq!(inproc_out.len(), 1, "the step before the stall survives");
    assert_eq!(inproc_out, shm_out, "backends disagree on salvaged output");
    assert!(inproc_degraded && shm_degraded);
}

/// Regression for the EOS race: a writer vanishing *between* `end_step`
/// and EOS used to leave blocked readers waiting out the whole hub
/// timeout. Committed steps must still be served, and the step that can
/// never commit must fail with a prompt `PeerGone` — on both backends.
#[test]
fn abandoned_writer_after_end_step_surfaces_peer_gone_promptly() {
    let check = |hub: Arc<StreamHub>| {
        let mut w = hub.open_writer("race.fp", 0, 1, WriterOptions::default());
        w.begin_step().unwrap();
        w.put_whole(tiny_source(0));
        w.end_step().unwrap();
        w.disconnect(); // gone for good, with no EOS — the race window

        let mut r = hub.open_reader("race.fp", 0, 1);
        let start = std::time::Instant::now();
        r.begin_step().unwrap();
        assert_eq!(r.get_whole("x").unwrap().data.to_f64_vec(), vec![0.0; 4]);
        r.end_step();
        let err = r.begin_step().unwrap_err();
        assert!(matches!(&err, StreamError::PeerGone { .. }), "{err:?}");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "PeerGone must be prompt, not a hub timeout"
        );
    };
    // Hub timeouts far beyond the assertion bound: only the fail-fast path
    // can pass this test.
    check(StreamHub::with_timeout(Duration::from_secs(120)));
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    let hub = StreamHub::connect(&broker.url()).unwrap();
    hub.set_wait_timeout(Duration::from_secs(120));
    check(hub);
    let shm = shm_broker("race");
    let hub = StreamHub::connect(&shm.url()).unwrap();
    hub.set_wait_timeout(Duration::from_secs(120));
    check(hub);
}

/// Spawns the `component_host` helper: the chaos source in its own OS
/// process, connected over TCP or shm by URL scheme, optionally dying
/// mid-run.
fn spawn_host(url: &str, steps: u64, abort_at: Option<u64>) -> std::process::Child {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_component_host"));
    cmd.arg(url).arg(steps.to_string());
    if let Some(s) = abort_at {
        cmd.arg(format!("abort-at={s}"));
    }
    cmd.stderr(std::process::Stdio::null());
    cmd.spawn().expect("spawn component_host")
}

/// A component *process* dying mid-step degrades its downstream exactly
/// like an in-proc stall: the broker turns the peer's death into a noisy
/// disconnect (socket EOF over TCP, dead-pid detection behind the ring
/// over shm), PeerGone surfaces promptly, and the Degrade policy keeps the
/// step committed before the death.
fn assert_killed_process_degrades(broker_hub: Arc<StreamHub>, url: &str) {
    let start = std::time::Instant::now();
    let mut child = spawn_host(url, 4, Some(1));

    let mut wf = Workflow::with_hub(broker_hub);
    let out = analysis_side(&mut wf);
    wf.set_fault_policy("magnitude", FaultPolicy::degrade());
    wf.set_fault_policy("collect", FaultPolicy::degrade());
    // The source lives in the child process, so this slice's wiring
    // dangles by design.
    let report = wf
        .run_with(RunOptions::new().with_validation(Validation::Skip))
        .unwrap();

    let status = child.wait().unwrap();
    assert!(!status.success(), "the host process must have died mid-run");
    assert_eq!(out.lock().len(), 1, "the committed step survives the death");
    assert!(
        report.degraded().contains(&"magnitude"),
        "degraded: {:?}",
        report.degraded()
    );
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "a dead process must surface as prompt PeerGone, not a hub timeout"
    );
}

#[test]
fn killed_component_process_degrades_downstream() {
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    assert_killed_process_degrades(Arc::clone(broker.hub()), &broker.url());
}

#[test]
fn killed_component_process_degrades_downstream_over_shm() {
    let broker = shm_broker("pkill");
    assert_killed_process_degrades(Arc::clone(broker.hub()), &broker.url());
}

/// A component process dying mid-step is *restartable*: a process-level
/// supervisor (here, the test) clears the stream's gone-writer mark with
/// [`StreamHub::prepare_restart`] and respawns the process, which replays
/// the uncommitted step; downstream restart policies ride out the gap. The
/// final output matches a no-fault in-proc golden run exactly.
fn assert_killed_process_restarts_to_golden(broker_hub: Arc<StreamHub>, url: String) {
    let (golden_wf, golden_out) = chaos_pipeline(4);
    golden_wf.run_with(RunOptions::default()).unwrap();
    let golden = golden_out.lock().clone();
    assert_eq!(golden.len(), 4);

    let respawn_hub = Arc::clone(&broker_hub);
    let respawner = std::thread::spawn(move || {
        let mut child = spawn_host(&url, 4, Some(1));
        let status = child.wait().unwrap();
        assert!(!status.success(), "first incarnation must die");
        // What a real process launcher would do before relaunching: reopen
        // the writer registration and clear the gone-writer mark.
        respawn_hub.prepare_restart(&[], &["c.fp".to_string()]);
        let status = spawn_host(&url, 4, None).wait().unwrap();
        assert!(status.success(), "second incarnation must finish cleanly");
    });

    let mut wf = Workflow::with_hub(broker_hub);
    let out = analysis_side(&mut wf);
    // Magnitude sees PeerGone between the death and the respawn; a patient
    // restart policy rides the gap out.
    wf.set_fault_policy(
        "magnitude",
        FaultPolicy::restart(50).with_backoff(Duration::from_millis(100)),
    );
    let report = wf
        .run_with(RunOptions::new().with_validation(Validation::Skip))
        .unwrap();
    respawner.join().unwrap();

    let mag = report.component("magnitude").unwrap();
    assert!(mag.outcome.is_completed(), "{:?}", mag.outcome);
    assert_eq!(
        out.lock().clone(),
        golden,
        "the replayed step must be neither lost nor duplicated"
    );
}

#[test]
fn killed_component_process_restarts_and_replays_the_step() {
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    assert_killed_process_restarts_to_golden(Arc::clone(broker.hub()), broker.url());
}

#[test]
fn killed_component_process_restarts_and_replays_the_step_over_shm() {
    let broker = shm_broker("replay");
    assert_killed_process_restarts_to_golden(Arc::clone(broker.hub()), broker.url());
}
