//! End-to-end checks of the zero-copy data plane: a workflow's payload
//! stream must be served without copies in the 1-writer/whole-read case,
//! and the three paper workflows must keep producing byte-identical
//! histograms on top of it.

use std::path::Path;

use sb_data::{Buffer, Shape, Variable};
use smartblock::prelude::*;
use smartblock::workflows::{gromacs_workflow, gtcp_workflow, lammps_workflow, PresetScale};

#[test]
fn whole_read_workflow_step_copies_nothing() {
    // One source rank puts a whole variable per step; one sink rank reads
    // it whole. Every get on the payload path must hit the exact-cover
    // fast path: the counters in the workflow report prove it.
    let mut wf = Workflow::new();
    wf.add_source("gen", 1, "raw.fp", |step| {
        (step < 4).then(|| {
            let data: Vec<f64> = (0..64).map(|i| (i as u64 * 10 + step) as f64).collect();
            Variable::new(
                "x",
                Shape::of(&[("rows", 8), ("cols", 8)]),
                Buffer::from(data),
            )
            .unwrap()
        })
    });
    wf.add_sink("check", 1, "raw.fp", |step, vars| {
        assert_eq!(vars["x"].get(&[0, 0]), step as f64);
        assert_eq!(vars["x"].get(&[7, 7]), (63 * 10 + step as usize) as f64);
    });
    let report = wf.run_with(RunOptions::default()).unwrap();

    let m = report
        .streams
        .iter()
        .find(|s| s.stream == "raw.fp")
        .expect("payload stream missing from the report");
    assert!(
        m.copies_elided > 0,
        "no whole-read hit the exact-cover fast path: {m:?}"
    );
    assert_eq!(
        m.bytes_copied, 0,
        "payload bytes were copied on a 1-writer/whole-read stream: {m:?}"
    );
    assert_eq!(m.bytes_read, 4 * 64 * 8);
}

fn scale() -> PresetScale {
    PresetScale {
        io_steps: 3,
        substeps: 3,
        bins: 12,
        ..PresetScale::default()
    }
}

fn render(results: &[smartblock::HistogramResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&format!(
            "step {} min {:.17e} max {:.17e} counts {:?}\n",
            r.step, r.min, r.max, r.counts
        ));
    }
    out
}

fn assert_matches_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("golden/{name}_histogram.txt"));
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden file {path:?}: {e}"));
    assert_eq!(
        rendered, golden,
        "{name} histogram output diverged from the recorded golden at {path:?}"
    );
}

/// The paper workflows' full-precision histogram trajectories, locked
/// against goldens recorded before the zero-copy data plane landed: the
/// transport rework may not change a single bit of analysis output.
#[test]
fn paper_workflow_histograms_match_pre_zero_copy_goldens() {
    let (wf, results) = lammps_workflow(&scale());
    wf.run_with(RunOptions::default()).unwrap();
    assert_matches_golden("lammps", &render(&results.lock()));

    let (wf, results) = gtcp_workflow(&scale());
    wf.run_with(RunOptions::default()).unwrap();
    assert_matches_golden("gtcp", &render(&results.lock()));

    let (wf, results) = gromacs_workflow(&scale());
    wf.run_with(RunOptions::default()).unwrap();
    assert_matches_golden("gromacs", &render(&results.lock()));
}
