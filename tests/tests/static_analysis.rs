//! The static dataflow analyzer: the paper's three workflows must
//! validate clean, and every class of mis-wiring the analyzer models must
//! be rejected *before launch* with a typed, readable issue.

use std::time::Duration;

use sb_stream::StreamHub;
use smartblock::launch::SimCode;
use smartblock::workflows::{
    gromacs_workflow, gtcp_workflow, lammps_aio_workflow, lammps_workflow, script_to_workflow,
    PresetScale, Simulation,
};
use smartblock::{
    AnalysisIssue, BinaryOp, Combine, DimReduce, Histogram, Magnitude, RunOptions, Select,
    Severity, Transpose, Validation, WiringIssue, Workflow,
};

fn errors(wf: &Workflow) -> Vec<AnalysisIssue> {
    wf.validate()
        .into_iter()
        .filter(|i| i.severity() == Severity::Error)
        .collect()
}

// ---------------------------------------------------------------- clean --

/// Figures 5–7: all three paper workflows pass static analysis.
#[test]
fn paper_workflows_validate_clean() {
    let scale = PresetScale::default();
    let (wf, _) = lammps_workflow(&scale);
    assert!(wf.validate().is_empty(), "{:?}", wf.validate());
    let scale = PresetScale {
        analysis_ranks: vec![2, 2, 2, 1],
        ..PresetScale::default()
    };
    let (wf, _) = gtcp_workflow(&scale);
    assert!(wf.validate().is_empty(), "{:?}", wf.validate());
    let (wf, _) = gromacs_workflow(&PresetScale::default());
    assert!(wf.validate().is_empty(), "{:?}", wf.validate());
    let (wf, _) = lammps_aio_workflow(&PresetScale::default());
    assert!(wf.validate().is_empty(), "{:?}", wf.validate());
}

/// A Fig. 8-style launch script assembles into a clean workflow, and the
/// propagated specs catch nothing because the wiring is right.
#[test]
fn fig8_style_script_validates_clean() {
    let script = r#"
        aprun -n 4 gtcp slices=16 points=32 steps=2 &
        aprun -n 3 select gtcp.fp plasma 2 psel.fp pperp P_perp &
        aprun -n 2 dim-reduce psel.fp pperp 2 1 dr1.fp flat2 &
        aprun -n 2 dim-reduce dr1.fp flat2 0 1 dr2.fp flat1 &
        aprun -n 1 histogram dr2.fp flat1 16 &
        wait
    "#;
    let wf = script_to_workflow(script).unwrap();
    let issues = wf.validate();
    assert!(issues.is_empty(), "{issues:?}");
}

// ------------------------------------------------------------ contracts --

/// Selecting a quantity the producer's header does not declare.
#[test]
fn unknown_select_label_is_rejected_statically() {
    let mut wf = Workflow::new();
    wf.add(2, Simulation::new(SimCode::Gtcp).param("steps", 1));
    wf.add(
        1,
        Select::new(("gtcp.fp", "plasma"), 2, ["Q_perp"], ("psel.fp", "q")),
    );
    wf.add(1, Histogram::new(("psel.fp", "q"), 4));
    let errs = errors(&wf);
    assert_eq!(errs.len(), 1, "{errs:?}");
    let AnalysisIssue::Contract {
        component, error, ..
    } = &errs[0]
    else {
        panic!("expected a contract issue, got {:?}", errs[0]);
    };
    assert_eq!(component, "select");
    let msg = error.to_string();
    assert!(msg.contains("Q_perp"), "{msg}");
    assert!(
        msg.contains("P_perp"),
        "available labels must be listed: {msg}"
    );
    // And run_with refuses to launch it.
    let err = wf.run_with(RunOptions::default()).unwrap_err().to_string();
    assert!(err.contains("static validation"), "{err}");
}

/// Dim-Reduce folding an axis the array does not have.
#[test]
fn out_of_range_reduce_axis_is_rejected_statically() {
    let mut wf = Workflow::new();
    wf.add(2, Simulation::new(SimCode::Gtcp).param("steps", 1));
    wf.add(
        1,
        DimReduce::new(("gtcp.fp", "plasma"), 7, 1, ("dr.fp", "flat")),
    );
    wf.add(1, Histogram::new(("dr.fp", "flat"), 4));
    let errs = errors(&wf);
    assert_eq!(errs.len(), 1, "{errs:?}");
    let msg = errs[0].to_string();
    assert!(msg.contains("dim-reduce"), "{msg}");
    assert!(msg.contains("axis 7"), "{msg}");
}

/// Transpose with a permutation of the wrong length.
#[test]
fn bad_transpose_permutation_is_rejected_statically() {
    let mut wf = Workflow::new();
    wf.add(2, Simulation::new(SimCode::Gromacs).param("steps", 1));
    wf.add(
        1,
        Transpose::new(("gromacs.fp", "coords"), vec![1, 0, 2], ("t.fp", "ct")),
    );
    wf.add(1, Histogram::new(("t.fp", "ct"), 4));
    let errs = errors(&wf);
    assert_eq!(errs.len(), 1, "{errs:?}");
    let msg = errs[0].to_string();
    assert!(msg.contains("transpose"), "{msg}");
    assert!(msg.contains("permutation"), "{msg}");
}

/// Combine joining two statically different global shapes.
#[test]
fn combine_shape_mismatch_is_rejected_statically() {
    let mut wf = Workflow::new();
    // 36-atom and 64-atom coordinate sets can never join element-wise.
    wf.add(
        1,
        Simulation::new(SimCode::Gromacs)
            .param("chains", 6)
            .param("len", 6)
            .param("steps", 1),
    );
    wf.add(
        1,
        Simulation::new(SimCode::Gromacs)
            .param("chains", 8)
            .param("len", 8)
            .param("steps", 1)
            .on_stream("big.fp"),
    );
    wf.add(
        1,
        Combine::new(
            ("gromacs.fp", "coords"),
            BinaryOp::Sub,
            ("big.fp", "coords"),
            ("d.fp", "diff"),
        ),
    );
    wf.add(1, Histogram::new(("d.fp", "diff"), 4));
    let errs = errors(&wf);
    assert_eq!(errs.len(), 1, "{errs:?}");
    let msg = errs[0].to_string();
    assert!(msg.contains("combine"), "{msg}");
    assert!(msg.contains("36"), "{msg}");
    assert!(msg.contains("64"), "{msg}");
}

/// Histogram on input the analyzer knows is 2-d.
#[test]
fn histogram_rank_mismatch_is_rejected_statically() {
    let mut wf = Workflow::new();
    wf.add(2, Simulation::new(SimCode::Gromacs).param("steps", 1));
    wf.add(1, Histogram::new(("gromacs.fp", "coords"), 4));
    let errs = errors(&wf);
    assert_eq!(errs.len(), 1, "{errs:?}");
    let msg = errs[0].to_string();
    assert!(msg.contains("1-d"), "{msg}");
}

/// More bins than the input can ever have elements: a degeneracy warning,
/// not an error — the workflow still runs.
#[test]
fn degenerate_bins_is_a_warning() {
    let script = r#"
        aprun -n 1 gromacs chains=2 len=2 steps=1 &
        aprun -n 1 magnitude gromacs.fp coords m.fp r &
        aprun -n 1 histogram m.fp r 4096 &
        wait
    "#;
    let wf = script_to_workflow(script).unwrap();
    let issues = wf.validate();
    assert_eq!(issues.len(), 1, "{issues:?}");
    assert_eq!(issues[0].severity(), Severity::Warning);
    let msg = issues[0].to_string();
    assert!(msg.contains("4096"), "{msg}");
    assert!(msg.contains("4"), "{msg}");
    assert!(errors(&wf).is_empty());
}

// ------------------------------------------------------- decomposition --

/// More ranks than the partitioned dimension has slices: sb_data's
/// decompose would leave ranks with empty parts and the extra processes
/// are pure overhead — flagged before anyone allocates them.
#[test]
fn over_decomposition_is_rejected_statically() {
    let mut wf = Workflow::new();
    wf.add(
        1,
        Simulation::new(SimCode::Gtcp)
            .param("slices", 4)
            .param("steps", 1),
    );
    // 8 ranks partitioning a 4-slice toroidal dimension.
    wf.add(
        8,
        Select::new(("gtcp.fp", "plasma"), 2, ["P_perp"], ("p.fp", "q")),
    );
    wf.add(1, DimReduce::new(("p.fp", "q"), 2, 1, ("d1.fp", "f2")));
    wf.add(1, DimReduce::new(("d1.fp", "f2"), 0, 1, ("d2.fp", "f1")));
    wf.add(1, Histogram::new(("d2.fp", "f1"), 4));
    let errs = errors(&wf);
    assert_eq!(errs.len(), 1, "{errs:?}");
    let AnalysisIssue::OverDecomposed {
        component,
        extent,
        nranks,
        ..
    } = &errs[0]
    else {
        panic!("expected an over-decomposition issue, got {:?}", errs[0]);
    };
    assert_eq!(component, "select");
    assert_eq!(*extent, 4);
    assert_eq!(*nranks, 8);
}

// --------------------------------------------------------------- wiring --

/// Wiring mistakes surface as typed issues that name streams and readers.
#[test]
fn wiring_issues_are_typed() {
    let mut wf = Workflow::new();
    wf.add(1, Magnitude::new(("nowhere.fp", "x"), ("m.fp", "y")));
    let issues = wf.validate();
    assert!(issues.iter().any(|i| matches!(
        i,
        AnalysisIssue::Wiring(WiringIssue::NoWriter { stream, .. }) if stream == "nowhere.fp"
    )));
    assert!(issues.iter().any(|i| matches!(
        i,
        AnalysisIssue::Wiring(WiringIssue::NoReader { stream, .. }) if stream == "m.fp"
    )));
}

// --------------------------------------------------------------- cycles --

fn cyclic_workflow(timeout: Duration) -> Workflow {
    let hub = StreamHub::with_timeout(timeout);
    let mut wf = Workflow::with_hub(hub);
    // Two transforms subscribed to each other: each waits on the other's
    // first step and neither can ever produce one.
    wf.add(1, Magnitude::new(("a.fp", "x"), ("b.fp", "y")));
    wf.add(1, Magnitude::new(("b.fp", "y"), ("a.fp", "x")));
    wf
}

/// Mutually-subscribed components are a guaranteed deadlock; the analyzer
/// reports the cycle members by label.
#[test]
fn subscription_cycle_is_rejected_statically() {
    let wf = cyclic_workflow(Duration::from_secs(120));
    let errs = errors(&wf);
    assert!(
        errs.iter().any(|i| matches!(
            i,
            AnalysisIssue::Cycle { components }
                if components.contains(&"magnitude".to_string())
                    && components.contains(&"magnitude-2".to_string())
        )),
        "{errs:?}"
    );
    let err = wf.run_with(RunOptions::default()).unwrap_err().to_string();
    assert!(err.contains("cycle"), "{err}");
}

/// The stress half of the cycle check: under `Validation::Skip` the same
/// workflow really does deadlock — both readers stall until the hub
/// watchdog fires — proving the static Cycle error predicts a genuine
/// runtime hang rather than a stylistic nit.
#[test]
fn predicted_cycle_really_deadlocks_unchecked() {
    let start = std::time::Instant::now();
    // A short watchdog keeps the proven deadlock inside the test budget.
    let err = cyclic_workflow(Duration::from_millis(400))
        .run_with(RunOptions::new().with_validation(Validation::Skip))
        .unwrap_err()
        .to_string();
    assert!(err.contains("timed out"), "{err}");
    // Both components blocked the full timeout: the hang was real.
    assert!(start.elapsed() >= Duration::from_millis(400), "{err}");
}
