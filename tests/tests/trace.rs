//! The step timeline end to end: a traced LAMMPS pipeline produces one
//! nested span tree per `(component, rank, step)`, supervisor decisions
//! (fault → restart, stall → degrade) land on the timeline at the injected
//! step, and — the accounting fix the timeline made visible — a restarted
//! run reports the same byte totals as a clean one.

use std::time::Duration;

use smartblock::prelude::*;
use smartblock::workflows::{lammps_workflow, PresetScale};
use smartblock::TraceEvent;

fn chaos_seed() -> u64 {
    std::env::var("SB_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(41)
}

fn traced(options: RunOptions) -> RunOptions {
    options.with_tracing(TraceConfig::new())
}

/// gen -> magnitude -> collect, the failure_modes chaos pipeline.
fn chaos_pipeline(steps: u64) -> Workflow {
    let mut wf = Workflow::new();
    wf.add_source("gen", 1, "c.fp", move |step| {
        (step < steps).then(|| {
            let data: Vec<f64> = (0..8 * 3).map(|i| i as f64 + step as f64).collect();
            sb_data::Variable::new(
                "coords",
                sb_data::Shape::of(&[("n", 8), ("d", 3)]),
                sb_data::Buffer::F64(data),
            )
            .unwrap()
        })
    });
    wf.add(1, Magnitude::new(("c.fp", "coords"), ("r.fp", "radii")));
    wf.add_sink("collect", 1, "r.fp", |_s, _vars| {});
    wf
}

fn spans_at<'a>(
    tl: &'a Timeline,
    kind: EventKind,
    component: &str,
    rank: u32,
    step: u64,
) -> Vec<&'a TraceEvent> {
    tl.events
        .iter()
        .filter(|e| e.kind == kind && e.component == component && e.rank == rank && e.step == step)
        .collect()
}

/// The paper's LAMMPS pipeline, traced: every component has exactly one
/// `step` span per (rank, timestep), with its phase spans (`wait`,
/// `compute`, `publish` as the component's role requires) nested inside.
#[test]
fn lammps_timeline_nests_phase_spans_inside_each_step() {
    let scale = PresetScale {
        sim_ranks: 4,
        analysis_ranks: vec![2, 2, 1],
        io_steps: 3,
        substeps: 2,
        ..PresetScale::default()
    }
    .size("nx", 8)
    .size("ny", 8);
    let (wf, _results) = lammps_workflow(&scale);
    let report = wf.run_with(traced(RunOptions::default())).unwrap();
    let tl = &report.timeline;
    assert!(!tl.is_empty(), "tracing was enabled; timeline must record");
    assert_eq!(tl.dropped, 0, "this run is far below the ring capacity");

    for comp in &report.components {
        // Sources (the sim) never wait on input; sinks never publish.
        let reads = comp.label != "lammps";
        let writes = comp.label != "histogram";
        for rank in 0..comp.nranks as u32 {
            for step in 0..comp.stats.steps {
                let steps = spans_at(tl, EventKind::Step, &comp.label, rank, step);
                assert_eq!(
                    steps.len(),
                    1,
                    "{}/{rank} step {step}: one step span per timestep per rank",
                    comp.label
                );
                let outer = steps[0];
                let mut phases = vec![EventKind::Compute];
                if reads {
                    phases.push(EventKind::Wait);
                }
                if writes {
                    phases.push(EventKind::Publish);
                }
                for kind in phases {
                    let inner = spans_at(tl, kind, &comp.label, rank, step);
                    assert!(
                        !inner.is_empty(),
                        "{}/{rank} step {step}: missing {} span",
                        comp.label,
                        kind.name()
                    );
                    for e in inner {
                        assert!(
                            e.start >= outer.start && e.end() <= outer.end(),
                            "{}/{rank} step {step}: {} [{:?}..{:?}] outside its step \
                             [{:?}..{:?}]",
                            comp.label,
                            kind.name(),
                            e.start,
                            e.end(),
                            outer.start,
                            outer.end()
                        );
                    }
                }
            }
        }
    }

    // The export round-trips through the same identifier CI validates.
    let json = tl.chrome_trace_json();
    assert!(json.contains("\"schema\":\"smartblock.trace.v1\""));
}

/// A seeded kill under a Restart policy stamps the timeline: the injected
/// fault instant sits at the faulted step with the kill code, and the
/// supervisor's restart attempt follows it.
#[test]
fn injected_kill_and_restart_land_on_the_timeline() {
    let mut wf = chaos_pipeline(4);
    wf.hub()
        .install_faults(FaultPlan::seeded(chaos_seed()).kill_at("magnitude", 1));
    wf.set_fault_policy(
        "magnitude",
        FaultPolicy::restart(2).with_backoff(Duration::from_millis(5)),
    );
    let report = wf.run_with(traced(RunOptions::default())).unwrap();
    assert_eq!(report.component("magnitude").unwrap().restarts(), 1);

    let tl = &report.timeline;
    let faults: Vec<_> = tl.of_kind(EventKind::FaultInjected).collect();
    assert_eq!(faults.len(), 1, "{faults:?}");
    assert_eq!(faults[0].component, "magnitude");
    assert_eq!(faults[0].step, 1, "fault was injected at step 1");
    assert_eq!(faults[0].arg, 1, "arg 1 encodes a kill fault");

    let restarts: Vec<_> = tl.of_kind(EventKind::RestartAttempt).collect();
    assert_eq!(restarts.len(), 1, "{restarts:?}");
    assert_eq!(restarts[0].component, "magnitude");
    assert_eq!(restarts[0].arg, 2, "arg is the upcoming attempt number");
    assert!(
        restarts[0].start >= faults[0].start,
        "the restart follows the fault"
    );
}

/// A stalled source degrades its starving consumer; the supervisor's
/// degrade decision is an event on the timeline.
#[test]
fn degrade_decision_lands_on_the_timeline() {
    let mut wf = chaos_pipeline(4);
    wf.hub()
        .install_faults(FaultPlan::seeded(chaos_seed()).stall_at("gen", 1));
    wf.set_fault_policy("magnitude", FaultPolicy::degrade());
    wf.set_fault_policy("collect", FaultPolicy::degrade());
    let report = wf
        .run_with(traced(
            RunOptions::new().with_hub_timeout(Duration::from_millis(300)),
        ))
        .unwrap();
    assert!(report.degraded().contains(&"magnitude"));
    let degraded: Vec<_> = report.timeline.of_kind(EventKind::Degraded).collect();
    assert!(
        degraded.iter().any(|e| e.component == "magnitude"),
        "{degraded:?}"
    );
}

/// The supervision accounting fix: a component that was killed and
/// restarted must report the union of all its attempts' work, so its byte
/// and step totals match a clean run of the same seeded pipeline exactly.
#[test]
fn restarted_run_reports_the_same_totals_as_a_clean_run() {
    let golden = chaos_pipeline(4).run_with(RunOptions::default()).unwrap();
    let golden_mag = golden.component("magnitude").unwrap();
    assert_eq!(golden_mag.stats.steps, 4);

    let mut wf = chaos_pipeline(4);
    wf.hub()
        .install_faults(FaultPlan::seeded(chaos_seed()).kill_at("magnitude", 1));
    wf.set_fault_policy(
        "magnitude",
        FaultPolicy::restart(2).with_backoff(Duration::from_millis(5)),
    );
    let report = wf.run_with(RunOptions::default()).unwrap();
    let mag = report.component("magnitude").unwrap();
    assert_eq!(mag.restarts(), 1, "{:?}", mag.outcome);
    assert_eq!(
        mag.stats.bytes_out, golden_mag.stats.bytes_out,
        "restarted bytes_out must match the clean run"
    );
    assert_eq!(
        mag.stats.bytes_in, golden_mag.stats.bytes_in,
        "restarted bytes_in must match the clean run"
    );
    assert_eq!(
        mag.stats.steps, golden_mag.stats.steps,
        "released steps are not re-produced"
    );
    // The whole pipeline's stream totals agree too.
    for (a, b) in report.streams.iter().zip(golden.streams.iter()) {
        assert_eq!(a.stream, b.stream);
        assert_eq!(
            a.bytes_written, b.bytes_written,
            "{}: restarted run rewrote or lost data",
            a.stream
        );
    }
}
