//! Cross-backend transport conformance: each of the three paper workflows
//! (LAMMPS, GTCP, GROMACS) must behave identically whether its streams run
//! through the in-proc hub, through a loopback TCP broker, or through a
//! shared-memory ring broker — byte-identical histogram trajectories
//! (checked against the recorded goldens in `tests/golden/`) and equal
//! per-component step counts.
//!
//! This is the conformance contract of the `Transport` trait: a backend may
//! change *how* steps move, never *what* arrives.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sb_comm::LaunchHandle;
use sb_data::decompose::default_partition;
use sb_data::{Buffer, Chunk, DType, Shape, VariableMeta};
use sb_stream::tcp::TcpBroker;
use sb_stream::{
    Compression, ShmBroker, StepStatus, StreamHub, StreamMetrics, TcpOptions, WireProtocol,
    WriterOptions,
};
use smartblock::metrics::WorkflowReport;
use smartblock::prelude::*;
use smartblock::workflows::{
    gromacs_workflow_on, gtcp_workflow_on, lammps_workflow_on, PresetScale,
};
use smartblock::HistogramResult;

/// The scale the goldens were recorded at (see `zero_copy.rs`).
fn scale() -> PresetScale {
    PresetScale {
        io_steps: 3,
        substeps: 3,
        bins: 12,
        ..PresetScale::default()
    }
}

fn render(results: &[HistogramResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&format!(
            "step {} min {:.17e} max {:.17e} counts {:?}\n",
            r.step, r.min, r.max, r.counts
        ));
    }
    out
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("golden/{name}_histogram.txt"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden file {path:?}: {e}"))
}

/// A fresh rendezvous directory for an shm broker (no tempfile crate in
/// tree; pid plus a counter keeps parallel test binaries apart).
fn shm_scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sb-conf-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type Preset =
    fn(Arc<StreamHub>, &PresetScale) -> (Workflow, Arc<parking_lot::Mutex<Vec<HistogramResult>>>);

/// Per-component step counts, keyed by label so backends can be compared.
fn step_counts(report: &WorkflowReport) -> BTreeMap<String, u64> {
    report
        .components
        .iter()
        .map(|c| (c.label.clone(), c.stats.steps))
        .collect()
}

/// Runs `preset` on `hub` and returns the rendered histogram trajectory
/// plus every component's step count.
fn run_on(hub: Arc<StreamHub>, preset: Preset) -> (String, BTreeMap<String, u64>) {
    let (wf, results) = preset(hub, &scale());
    let report = wf.run_with(RunOptions::default()).unwrap();
    let rendered = render(&results.lock());
    (rendered, step_counts(&report))
}

/// The conformance check: the workflow on the in-proc backend, on a
/// loopback TCP broker, and on a shared-memory ring broker must all
/// reproduce the golden byte-for-byte, with identical per-component step
/// counts.
fn assert_backends_conform(name: &str, preset: Preset) {
    let (inproc, inproc_steps) = run_on(StreamHub::with_timeout(scale().wait_timeout), preset);
    assert_eq!(
        inproc,
        golden(name),
        "{name}: in-proc output diverged from the recorded golden"
    );

    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    let hub = StreamHub::connect(&broker.url()).unwrap();
    hub.set_wait_timeout(scale().wait_timeout);
    assert_eq!(hub.backend(), "tcp");
    let (tcp, tcp_steps) = run_on(hub, preset);
    assert_eq!(
        tcp,
        golden(name),
        "{name}: TCP output diverged from the recorded golden"
    );

    let dir = shm_scratch(name);
    let shm_broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
    let hub = StreamHub::connect(&shm_broker.url()).unwrap();
    hub.set_wait_timeout(scale().wait_timeout);
    assert_eq!(hub.backend(), "shm");
    let (shm, shm_steps) = run_on(hub, preset);
    assert_eq!(
        shm,
        golden(name),
        "{name}: shared-memory output diverged from the recorded golden"
    );

    assert_eq!(
        inproc_steps, tcp_steps,
        "{name}: backends disagree on per-component step counts"
    );
    assert_eq!(
        inproc_steps, shm_steps,
        "{name}: the shm backend disagrees on per-component step counts"
    );
    assert!(
        inproc_steps.values().all(|&s| s == scale().io_steps),
        "{name}: every component must see every step: {inproc_steps:?}"
    );
}

#[test]
fn lammps_workflow_conforms_across_backends() {
    assert_backends_conform("lammps", lammps_workflow_on);
}

#[test]
fn gtcp_workflow_conforms_across_backends() {
    assert_backends_conform("gtcp", gtcp_workflow_on);
}

#[test]
fn gromacs_workflow_conforms_across_backends() {
    assert_backends_conform("gromacs", gromacs_workflow_on);
}

/// The protocol half of the conformance contract: whatever frame grammar a
/// client negotiates — legacy v1, interned v2, or v2 with LZ-compressed
/// payloads — the bytes that arrive are the same bytes, on either remote
/// fabric. Every preset must reproduce its golden through each variant.
fn assert_wire_variant_conforms(url: &str, variant: &str, options: TcpOptions) {
    for (name, preset) in [
        ("lammps", lammps_workflow_on as Preset),
        ("gtcp", gtcp_workflow_on as Preset),
        ("gromacs", gromacs_workflow_on as Preset),
    ] {
        let hub = StreamHub::connect_with(url, options).unwrap();
        hub.set_wait_timeout(scale().wait_timeout);
        let (out, steps) = run_on(hub, preset);
        assert_eq!(
            out,
            golden(name),
            "{name} over {variant}: output diverged from the recorded golden"
        );
        assert!(
            steps.values().all(|&s| s == scale().io_steps),
            "{name} over {variant}: every component must see every step: {steps:?}"
        );
    }
}

#[test]
fn v1_tcp_clients_preserve_golden_outputs() {
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    assert_wire_variant_conforms(
        &broker.url(),
        "tcp-v1",
        TcpOptions::default().with_protocol(WireProtocol::V1),
    );
}

#[test]
fn v2_interned_tcp_clients_preserve_golden_outputs() {
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    assert_wire_variant_conforms(
        &broker.url(),
        "tcp-v2",
        TcpOptions::default().with_protocol(WireProtocol::V2),
    );
}

#[test]
fn compressed_tcp_clients_preserve_golden_outputs() {
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    assert_wire_variant_conforms(
        &broker.url(),
        "tcp-v2lz",
        TcpOptions::default().with_compression(Compression::Lz),
    );
}

#[test]
fn v1_shm_clients_preserve_golden_outputs() {
    let dir = shm_scratch("v1");
    let broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
    assert_wire_variant_conforms(
        &broker.url(),
        "shm-v1",
        TcpOptions::default().with_protocol(WireProtocol::V1),
    );
}

#[test]
fn v2_interned_shm_clients_preserve_golden_outputs() {
    let dir = shm_scratch("v2");
    let broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
    assert_wire_variant_conforms(
        &broker.url(),
        "shm-v2",
        TcpOptions::default().with_protocol(WireProtocol::V2),
    );
}

#[test]
fn compressed_shm_clients_preserve_golden_outputs() {
    let dir = shm_scratch("v2lz");
    let broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
    assert_wire_variant_conforms(
        &broker.url(),
        "shm-v2lz",
        TcpOptions::default().with_compression(Compression::Lz),
    );
}

/// Pumps `steps` steps of a `rows`-element f64 variable from a
/// `writers`-rank group to a `readers`-rank slab-reading group over one TCP
/// stream and returns the stream's counters (the local analogue of
/// sb-bench's `run_wire_on`, kept here so the conformance suite needs no
/// bench dependency).
fn wire_pump(
    hub: &Arc<StreamHub>,
    stream: &str,
    writers: usize,
    readers: usize,
    rows: usize,
    steps: u64,
) -> StreamMetrics {
    let shape = Shape::linear("rows", rows);

    let hub_w = Arc::clone(hub);
    let shape_w = shape.clone();
    let stream_w = stream.to_string();
    let writer = LaunchHandle::spawn("conf-writer", writers, move |comm| {
        let mut w = hub_w.open_writer(
            &stream_w,
            comm.rank(),
            comm.size(),
            WriterOptions::buffered(2),
        );
        let region = default_partition(&shape_w, comm.size(), comm.rank());
        let meta = VariableMeta::new("x", shape_w.clone(), DType::F64);
        let data = Buffer::F64((0..region.len()).map(|i| i as f64).collect());
        for _ in 0..steps {
            w.begin_step().unwrap();
            w.put(Chunk::new(meta.clone(), region.clone(), data.clone()).unwrap());
            w.end_step().unwrap();
        }
        w.close();
    })
    .expect("spawn conformance writers");

    let hub_r = Arc::clone(hub);
    let stream_r = stream.to_string();
    let reader = LaunchHandle::spawn("conf-reader", readers, move |comm| {
        let mut r = hub_r.open_reader(&stream_r, comm.rank(), comm.size());
        let region = default_partition(&shape, comm.size(), comm.rank());
        while let StepStatus::Ready(_) = r.begin_step().unwrap() {
            let v = r.get("x", &region).unwrap();
            assert_eq!(v.data.len(), region.len());
            r.end_step();
        }
    })
    .expect("spawn conformance readers");

    writer.join().expect("conformance writers");
    reader.join().expect("conformance readers");
    hub.metrics(stream).expect("pumped stream metrics")
}

/// The honest-accounting contract across writer/reader fan-out shapes:
/// each hop is metered once, where the broker sees it.
///
/// * the writer hop carries every committed payload byte exactly once,
///   with at most 10% framing overhead;
/// * the reader hop carries the full step to each reader connection
///   (assembly is client-side), so its floor is `readers x` the payload;
/// * `bytes_on_wire` is exactly the sum of the two hops — the seed
///   counted both ends of both hops, reporting ~4x at 1x1;
/// * `wire_shm_bytes` is a fabric *attribution*, not a third hop: on a
///   shared-memory broker every frame byte is also in a hop counter, so
///   it equals `bytes_on_wire` there and is zero on TCP.
fn assert_accounting_matrix(url: &str, fabric: &str) {
    let steps = 4u64;
    let rows = 4096usize;
    for (writers, readers) in [(1usize, 1usize), (2, 2), (4, 2)] {
        let hub = StreamHub::connect(url).unwrap();
        let stream = format!("acct-{fabric}-w{writers}r{readers}.fp");
        let m = wire_pump(&hub, &stream, writers, readers, rows, steps);

        let moved = steps * (rows * 8) as u64;
        assert_eq!(m.steps_committed, steps, "{stream}");
        assert_eq!(m.bytes_written, moved, "{stream}");

        let writer_floor = moved;
        let reader_floor = moved * readers as u64;
        assert!(
            m.wire_writer_bytes >= writer_floor,
            "{stream}: writer hop {} under payload floor {writer_floor}",
            m.wire_writer_bytes
        );
        assert!(
            (m.wire_writer_bytes as f64) <= 1.1 * writer_floor as f64,
            "{stream}: writer hop {} exceeds 1.1x floor {writer_floor} — \
             double-counting is back",
            m.wire_writer_bytes
        );
        assert!(
            m.wire_reader_bytes >= reader_floor,
            "{stream}: reader hop {} under {readers}-reader floor {reader_floor}",
            m.wire_reader_bytes
        );
        assert!(
            (m.wire_reader_bytes as f64) <= 1.1 * reader_floor as f64,
            "{stream}: reader hop {} exceeds 1.1x floor {reader_floor} — \
             double-counting is back",
            m.wire_reader_bytes
        );
        assert_eq!(
            m.bytes_on_wire,
            m.wire_writer_bytes + m.wire_reader_bytes,
            "{stream}: the headline total must be exactly the sum of the hops"
        );
        let shm_expected = if fabric == "shm" { m.bytes_on_wire } else { 0 };
        assert_eq!(
            m.wire_shm_bytes, shm_expected,
            "{stream}: shared-memory attribution must cover every frame byte \
             on shm and stay zero elsewhere"
        );
    }
}

#[test]
fn wire_accounting_matrix_is_single_counted() {
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    assert_accounting_matrix(&broker.url(), "tcp");
}

#[test]
fn shm_accounting_matrix_is_single_counted_and_attributed() {
    let dir = shm_scratch("acct");
    let broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
    assert_accounting_matrix(&broker.url(), "shm");
}

/// Two workflows on one broker must not interfere: the paper's name-based
/// rendezvous scopes every stream, so running two presets concurrently over
/// the same TCP broker still reproduces both goldens.
#[test]
fn concurrent_workflows_share_a_broker_without_crosstalk() {
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    let url = broker.url();

    let url_b = url.clone();
    let gtcp = std::thread::spawn(move || {
        let hub = StreamHub::connect(&url_b).unwrap();
        run_on(hub, gtcp_workflow_on).0
    });
    let hub = StreamHub::connect(&url).unwrap();
    let gromacs = run_on(hub, gromacs_workflow_on).0;
    let gtcp = gtcp.join().unwrap();

    assert_eq!(gromacs, golden("gromacs"));
    assert_eq!(gtcp, golden("gtcp"));
}

/// Same crosstalk guarantee over the shared-memory fabric: two workflows'
/// ring connections through one rendezvous directory stay scoped by
/// stream name.
#[test]
fn concurrent_workflows_share_an_shm_broker_without_crosstalk() {
    let dir = shm_scratch("xtalk");
    let broker = ShmBroker::bind(dir.to_str().unwrap()).unwrap();
    let url = broker.url();

    let url_b = url.clone();
    let gtcp = std::thread::spawn(move || {
        let hub = StreamHub::connect(&url_b).unwrap();
        run_on(hub, gtcp_workflow_on).0
    });
    let hub = StreamHub::connect(&url).unwrap();
    let gromacs = run_on(hub, gromacs_workflow_on).0;
    let gtcp = gtcp.join().unwrap();

    assert_eq!(gromacs, golden("gromacs"));
    assert_eq!(gtcp, golden("gtcp"));
}
