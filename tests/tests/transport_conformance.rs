//! Cross-backend transport conformance: each of the three paper workflows
//! (LAMMPS, GTCP, GROMACS) must behave identically whether its streams run
//! through the in-proc hub or through a loopback TCP broker — byte-identical
//! histogram trajectories (checked against the recorded goldens in
//! `tests/golden/`) and equal per-component step counts.
//!
//! This is the conformance contract of the `Transport` trait: a backend may
//! change *how* steps move, never *what* arrives.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use sb_stream::tcp::TcpBroker;
use sb_stream::StreamHub;
use smartblock::metrics::WorkflowReport;
use smartblock::prelude::*;
use smartblock::workflows::{
    gromacs_workflow_on, gtcp_workflow_on, lammps_workflow_on, PresetScale,
};
use smartblock::HistogramResult;

/// The scale the goldens were recorded at (see `zero_copy.rs`).
fn scale() -> PresetScale {
    PresetScale {
        io_steps: 3,
        substeps: 3,
        bins: 12,
        ..PresetScale::default()
    }
}

fn render(results: &[HistogramResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&format!(
            "step {} min {:.17e} max {:.17e} counts {:?}\n",
            r.step, r.min, r.max, r.counts
        ));
    }
    out
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("golden/{name}_histogram.txt"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden file {path:?}: {e}"))
}

type Preset =
    fn(Arc<StreamHub>, &PresetScale) -> (Workflow, Arc<parking_lot::Mutex<Vec<HistogramResult>>>);

/// Per-component step counts, keyed by label so backends can be compared.
fn step_counts(report: &WorkflowReport) -> BTreeMap<String, u64> {
    report
        .components
        .iter()
        .map(|c| (c.label.clone(), c.stats.steps))
        .collect()
}

/// Runs `preset` on `hub` and returns the rendered histogram trajectory
/// plus every component's step count.
fn run_on(hub: Arc<StreamHub>, preset: Preset) -> (String, BTreeMap<String, u64>) {
    let (wf, results) = preset(hub, &scale());
    let report = wf.run_with(RunOptions::default()).unwrap();
    let rendered = render(&results.lock());
    (rendered, step_counts(&report))
}

/// The conformance check: the workflow on the in-proc backend and on a
/// loopback TCP broker must both reproduce the golden byte-for-byte, with
/// identical per-component step counts.
fn assert_backends_conform(name: &str, preset: Preset) {
    let (inproc, inproc_steps) = run_on(StreamHub::with_timeout(scale().wait_timeout), preset);
    assert_eq!(
        inproc,
        golden(name),
        "{name}: in-proc output diverged from the recorded golden"
    );

    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    let hub = StreamHub::connect(&broker.url()).unwrap();
    hub.set_wait_timeout(scale().wait_timeout);
    assert_eq!(hub.backend(), "tcp");
    let (tcp, tcp_steps) = run_on(hub, preset);
    assert_eq!(
        tcp,
        golden(name),
        "{name}: TCP output diverged from the recorded golden"
    );
    assert_eq!(
        inproc_steps, tcp_steps,
        "{name}: backends disagree on per-component step counts"
    );
    assert!(
        inproc_steps.values().all(|&s| s == scale().io_steps),
        "{name}: every component must see every step: {inproc_steps:?}"
    );
}

#[test]
fn lammps_workflow_conforms_across_backends() {
    assert_backends_conform("lammps", lammps_workflow_on);
}

#[test]
fn gtcp_workflow_conforms_across_backends() {
    assert_backends_conform("gtcp", gtcp_workflow_on);
}

#[test]
fn gromacs_workflow_conforms_across_backends() {
    assert_backends_conform("gromacs", gromacs_workflow_on);
}

/// Two workflows on one broker must not interfere: the paper's name-based
/// rendezvous scopes every stream, so running two presets concurrently over
/// the same TCP broker still reproduces both goldens.
#[test]
fn concurrent_workflows_share_a_broker_without_crosstalk() {
    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    let url = broker.url();

    let url_b = url.clone();
    let gtcp = std::thread::spawn(move || {
        let hub = StreamHub::connect(&url_b).unwrap();
        run_on(hub, gtcp_workflow_on).0
    });
    let hub = StreamHub::connect(&url).unwrap();
    let gromacs = run_on(hub, gromacs_workflow_on).0;
    let gtcp = gtcp.join().unwrap();

    assert_eq!(gromacs, golden("gromacs"));
    assert_eq!(gtcp, golden("gtcp"));
}
