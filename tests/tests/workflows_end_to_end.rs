//! End-to-end correctness of the three paper workflows: every workflow's
//! histogram output is checked against a serial reference computation of
//! the same quantity.

use sb_integration_tests::{reference_histogram, serial_gtcp_pperp, serial_lammps_magnitudes};
use sb_sims::{GtcpConfig, LammpsConfig};
use smartblock::prelude::*;
use smartblock::workflows::{
    gromacs_workflow, gtcp_workflow, lammps_aio_workflow, lammps_workflow, PresetScale,
};

fn small_lammps_scale() -> PresetScale {
    PresetScale {
        sim_ranks: 3,
        analysis_ranks: vec![2, 2, 2],
        io_steps: 3,
        substeps: 5,
        bins: 12,
        ..PresetScale::default()
    }
    .size("nx", 16)
    .size("ny", 16)
}

#[test]
fn lammps_workflow_matches_serial_reference() {
    let scale = small_lammps_scale();
    let (wf, results) = lammps_workflow(&scale);
    let report = wf.run_with(RunOptions::default()).unwrap();

    let cfg = LammpsConfig {
        nx: 16,
        ny: 16,
        ..LammpsConfig::default()
    };
    let reference = serial_lammps_magnitudes(cfg, scale.io_steps, scale.substeps);

    let got = results.lock().clone();
    assert_eq!(got.len(), 3, "one histogram per coarse step");
    for (step, hist) in got.iter().enumerate() {
        let expect = reference_histogram(step as u64, &reference[step], scale.bins);
        assert!(
            (hist.min - expect.min).abs() < 1e-12 && (hist.max - expect.max).abs() < 1e-12,
            "step {step}: range [{}, {}] vs serial [{}, {}]",
            hist.min,
            hist.max,
            expect.min,
            expect.max
        );
        assert_eq!(hist.counts, expect.counts, "step {step} counts");
    }
    // Every component saw all three steps.
    for label in ["lammps", "select", "magnitude", "histogram"] {
        assert_eq!(report.component(label).unwrap().stats.steps, 3, "{label}");
    }
}

#[test]
fn gtcp_workflow_matches_serial_reference() {
    let scale = PresetScale {
        sim_ranks: 4,
        analysis_ranks: vec![3, 2, 2, 2],
        io_steps: 3,
        substeps: 4,
        bins: 10,
        ..PresetScale::default()
    }
    .size("slices", 12)
    .size("points", 16);

    let (wf, results) = gtcp_workflow(&scale);
    wf.run_with(RunOptions::default()).unwrap();

    let cfg = GtcpConfig {
        n_slices: 12,
        n_points: 16,
        ..GtcpConfig::default()
    };
    let reference = serial_gtcp_pperp(cfg, scale.io_steps, scale.substeps);

    let got = results.lock().clone();
    assert_eq!(got.len(), 3);
    for (step, hist) in got.iter().enumerate() {
        let expect = reference_histogram(step as u64, &reference[step], scale.bins);
        assert_eq!(hist.counts, expect.counts, "step {step}");
        assert!((hist.min - expect.min).abs() < 1e-12);
        assert!((hist.max - expect.max).abs() < 1e-12);
        assert_eq!(hist.total() as usize, 12 * 16, "every grid point binned");
    }
}

#[test]
fn gromacs_workflow_shows_growing_spread() {
    let scale = PresetScale {
        sim_ranks: 2,
        analysis_ranks: vec![2, 1],
        io_steps: 4,
        substeps: 60,
        bins: 10,
        ..PresetScale::default()
    }
    .size("chains", 24)
    .size("len", 12);

    let (wf, results) = gromacs_workflow(&scale);
    wf.run_with(RunOptions::default()).unwrap();

    let got = results.lock().clone();
    assert_eq!(got.len(), 4);
    for hist in &got {
        assert_eq!(hist.total() as usize, 24 * 12, "every atom binned");
    }
    // The spread of the atom cloud (max radius) grows under Langevin noise.
    assert!(
        got.last().unwrap().max > got.first().unwrap().max,
        "spread did not grow: {} -> {}",
        got.first().unwrap().max,
        got.last().unwrap().max
    );
}

#[test]
fn aio_and_componentized_pipelines_agree_exactly() {
    // The paper's §V-C comparison is only meaningful because both versions
    // compute the same thing; here we require bit-identical histograms.
    let scale = small_lammps_scale();
    let (wf, composed) = lammps_workflow(&scale);
    wf.run_with(RunOptions::default()).unwrap();
    let (wf, fused) = lammps_aio_workflow(&scale);
    wf.run_with(RunOptions::default()).unwrap();

    let a = composed.lock().clone();
    let b = fused.lock().clone();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.counts, y.counts, "step {}", x.step);
        assert_eq!(x.min, y.min);
        assert_eq!(x.max, y.max);
    }
}

#[test]
fn results_are_invariant_under_rank_counts() {
    // MxN freedom: the same workflow with different process counts per
    // component must produce identical analysis results.
    let base = PresetScale {
        sim_ranks: 2,
        analysis_ranks: vec![1, 1, 1, 1],
        io_steps: 2,
        substeps: 4,
        bins: 8,
        ..PresetScale::default()
    }
    .size("slices", 10)
    .size("points", 12);

    let (wf, first) = gtcp_workflow(&base);
    wf.run_with(RunOptions::default()).unwrap();
    let reference = first.lock().clone();

    for ranks in [vec![2, 3, 2, 2], vec![4, 1, 3, 1]] {
        let scale = PresetScale {
            sim_ranks: 5,
            analysis_ranks: ranks.clone(),
            ..base.clone()
        };
        let (wf, results) = gtcp_workflow(&scale);
        wf.run_with(RunOptions::default()).unwrap();
        let got = results.lock().clone();
        assert_eq!(got, reference, "ranks {ranks:?} changed the analysis");
    }
}

#[test]
fn histogram_file_endpoint_writes_parseable_output() {
    let dir = std::env::temp_dir().join(format!("sb_hist_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("velocities.txt");

    let scale = PresetScale {
        io_steps: 2,
        ..small_lammps_scale()
    };
    let (wf2, _results) = {
        let hub = sb_stream::StreamHub::new();
        let mut wf2 = smartblock::Workflow::with_hub(hub);
        wf2.add(
            1,
            smartblock::workflows::Simulation::new(smartblock::launch::SimCode::Gromacs)
                .param("chains", 8)
                .param("len", 8)
                .param("steps", scale.io_steps)
                .param("interval", 5),
        );
        wf2.add(
            1,
            smartblock::Magnitude::new(("gromacs.fp", "coords"), ("m.fp", "r")),
        );
        let h = smartblock::Histogram::new(("m.fp", "r"), 6).with_output_file(&path);
        let r = h.results_handle();
        wf2.add(1, h);
        (wf2, r)
    };
    wf2.run_with(RunOptions::default()).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let headers = text.lines().filter(|l| l.starts_with("# step")).count();
    assert_eq!(headers, 2, "one header per step:\n{text}");
    let data_lines = text.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(data_lines, 2 * 6, "six bins per step");
    // Counts per step sum to the atom count.
    for block in text.split("# step").skip(1) {
        let total: u64 = block
            .lines()
            .skip(1)
            .filter_map(|l| l.split_whitespace().nth(2))
            .filter_map(|c| c.parse::<u64>().ok())
            .sum();
        assert_eq!(total, 64, "atom count per step");
    }
    std::fs::remove_dir_all(&dir).ok();
}
