//! Composition behaviours: launch-order independence, DAG fan-out, file
//! decoupling, data-increasing analytics, stats, histogram chaining, and
//! script-driven assembly — everything the paper claims "out of the box".

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sb_data::{Buffer, Shape, Variable};
use smartblock::launch::SimCode;
use smartblock::prelude::*;
use smartblock::workflows::{script_to_workflow, Simulation};

/// A deterministic 2-d test source: `n × props` with labelled columns.
fn labelled_source(step: u64, n: usize) -> Variable {
    let mut data = Vec::with_capacity(n * 4);
    for i in 0..n {
        data.push((i + 1) as f64); // ID
        data.push(((i + step as usize) % 3) as f64); // a
        data.push((i as f64 * 0.5) + step as f64); // b
        data.push(-(i as f64)); // c
    }
    Variable::new(
        "rows",
        Shape::of(&[("n", n), ("props", 4)]),
        Buffer::from(data),
    )
    .unwrap()
    .with_labels(1, &["ID", "a", "b", "c"])
    .unwrap()
}

#[test]
fn components_connect_regardless_of_add_order() {
    // Add the pipeline back-to-front; FlexPath-style blocking sorts it out.
    let collected: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_data = Arc::clone(&collected);
    let mut wf = Workflow::new();
    wf.add_sink("end", 1, "out.fp", move |_step, vars| {
        sink_data.lock().extend(vars["picked"].data.to_f64_vec());
    });
    wf.add(
        2,
        Select::new(("in.fp", "rows"), 1, ["b"], ("out.fp", "picked")),
    );
    wf.add_source("start", 2, "in.fp", |step| {
        (step < 2).then(|| labelled_source(step, 6))
    });
    wf.run_with(RunOptions::default()).unwrap();
    let got = collected.lock().clone();
    // Column b per step: i*0.5 + step for i in 0..6.
    let expect: Vec<f64> = (0..2u64)
        .flat_map(|s| (0..6).map(move |i| i as f64 * 0.5 + s as f64))
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn fork_feeds_identical_data_to_both_branches() {
    let a: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let b: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));

    let mut wf = Workflow::new();
    wf.add_source("gen", 2, "src.fp", |step| {
        (step < 3).then(|| labelled_source(step, 8))
    });
    wf.add(3, Fork::new("src.fp", ["left.fp", "right.fp"]));
    wf.add_sink("left", 1, "left.fp", move |_s, vars| {
        a2.lock().extend(vars["rows"].data.to_f64_vec());
    });
    wf.add_sink("right", 2, "right.fp", move |_s, vars| {
        b2.lock().extend(vars["rows"].data.to_f64_vec());
    });
    wf.run_with(RunOptions::default()).unwrap();
    let left = a.lock().clone();
    let right = b.lock().clone();
    assert_eq!(left.len(), 3 * 8 * 4);
    assert_eq!(left, right, "fork branches diverged");
}

#[test]
fn file_write_then_file_read_preserves_the_stream() {
    let path = std::env::temp_dir().join(format!("sb_decouple_{}.sbc", std::process::id()));

    // Phase 1: persist three steps.
    let mut phase1 = Workflow::new();
    phase1.add_source("gen", 2, "live.fp", |step| {
        (step < 3).then(|| labelled_source(step, 10))
    });
    phase1.add(1, FileWrite::new("live.fp", &path));
    phase1.run_with(RunOptions::default()).unwrap();

    // Phase 2: replay and verify content, labels and attrs survive.
    let collected: Arc<Mutex<Vec<(u64, Variable)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_data = Arc::clone(&collected);
    let mut phase2 = Workflow::new();
    phase2.add(3, FileRead::new(&path, "replay.fp"));
    phase2.add_sink("end", 1, "replay.fp", move |step, vars| {
        sink_data.lock().push((step, vars["rows"].clone()));
    });
    phase2.run_with(RunOptions::default()).unwrap();

    let got = collected.lock().clone();
    assert_eq!(got.len(), 3);
    for (step, var) in got {
        let expect = labelled_source(step, 10);
        assert_eq!(var.data, expect.data, "step {step}");
        assert_eq!(var.labels, expect.labels);
        assert_eq!(var.shape.sizes(), expect.shape.sizes());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn all_pairs_grows_data_and_matches_serial() {
    let points = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, 2.0]];
    let make_var = move |_step: u64| {
        let data: Vec<f64> = points.iter().flatten().copied().collect();
        Variable::new(
            "pts",
            Shape::of(&[("points", 5), ("coords", 2)]),
            Buffer::from(data),
        )
        .unwrap()
    };
    let expect = {
        let var = make_var(0);
        smartblock::all_pairs::pairwise_distances(&var, 0, 5).unwrap()
    };

    let collected: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_data = Arc::clone(&collected);
    let mut wf = Workflow::new();
    wf.add_source("gen", 1, "pts.fp", move |step| {
        (step < 1).then(|| make_var(step))
    });
    wf.add(3, AllPairs::new(("pts.fp", "pts"), ("dists.fp", "d")));
    wf.add_sink("end", 1, "dists.fp", move |_s, vars| {
        sink_data.lock().extend(vars["d"].data.to_f64_vec());
    });
    wf.run_with(RunOptions::default()).unwrap();

    let got = collected.lock().clone();
    assert_eq!(got.len(), 10, "5 points -> 10 pairs (> the 5x2 input)");
    assert_eq!(got, expect);
}

#[test]
fn stats_component_summarizes_any_rank_input() {
    let collected: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_data = Arc::clone(&collected);
    let mut wf = Workflow::new();
    // A 3-d input: stats must flatten it regardless of rank.
    wf.add_source("gen", 2, "cube.fp", |step| {
        (step < 1).then(|| {
            let data: Vec<f64> = (0..24).map(|i| i as f64).collect();
            Variable::new(
                "t",
                Shape::of(&[("a", 2), ("b", 3), ("c", 4)]),
                Buffer::from(data),
            )
            .unwrap()
        })
    });
    wf.add(3, Stats::new(("cube.fp", "t"), ("sum.fp", "s")));
    wf.add_sink("end", 1, "sum.fp", move |_s, vars| {
        sink_data.lock().extend(vars["s"].data.to_f64_vec());
    });
    wf.run_with(RunOptions::default()).unwrap();
    let got = collected.lock().clone();
    assert_eq!(got.len(), 5);
    assert_eq!(got[0], 0.0); // min
    assert_eq!(got[1], 23.0); // max
    assert_eq!(got[2], 11.5); // mean
    assert_eq!(got[4], 24.0); // count
    let expect_std = (0..24)
        .map(|i| (i as f64 - 11.5) * (i as f64 - 11.5))
        .sum::<f64>()
        / 24.0;
    assert!((got[3] - expect_std.sqrt()).abs() < 1e-12);
}

#[test]
fn histogram_output_stream_chains_downstream() {
    let collected: Arc<Mutex<Vec<BTreeMap<String, Variable>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_data = Arc::clone(&collected);
    let mut wf = Workflow::new();
    wf.add_source("gen", 1, "v.fp", |step| {
        (step < 2).then(|| {
            let data: Vec<f64> = (0..16).map(|i| (i + step as usize) as f64).collect();
            Variable::new("x", Shape::linear("n", 16), Buffer::from(data)).unwrap()
        })
    });
    wf.add(
        2,
        Histogram::new(("v.fp", "x"), 4).with_output_stream("h.fp"),
    );
    wf.add_sink("end", 1, "h.fp", move |_s, vars| {
        sink_data.lock().push(vars.clone());
    });
    wf.run_with(RunOptions::default()).unwrap();

    let got = collected.lock().clone();
    assert_eq!(got.len(), 2);
    for vars in &got {
        let counts = vars["counts"].data.to_f64_vec();
        assert_eq!(counts.iter().sum::<f64>(), 16.0);
        let edges = vars["bin_edges"].data.to_f64_vec();
        assert_eq!(edges.len(), 5);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        // Attributes survive the stream hop.
        assert!(vars["counts"].attrs.contains_key("min"));
        assert!(vars["counts"].attrs.contains_key("max"));
    }
}

#[test]
fn rendezvous_mode_workflows_are_still_correct() {
    use sb_stream::WriterOptions;
    let scale = smartblock::workflows::PresetScale {
        sim_ranks: 2,
        analysis_ranks: vec![2, 1, 1, 1],
        io_steps: 2,
        substeps: 3,
        bins: 6,
        writer_options: WriterOptions::rendezvous(),
        ..Default::default()
    }
    .size("slices", 8)
    .size("points", 8);
    let (wf, results) = smartblock::workflows::gtcp_workflow(&scale);
    wf.run_with(RunOptions::default()).unwrap();
    let got = results.lock().clone();
    assert_eq!(got.len(), 2);
    assert!(got.iter().all(|h| h.total() == 64));
}

#[test]
fn fig8_style_script_runs_end_to_end() {
    let script = r#"
        # LAMMPS velocity-histogram workflow, Fig. 8 grammar
        aprun -n 1 histogram velos.fp velocities 8 &
        aprun -n 2 magnitude lmpselect.fp lmpsel velos.fp velocities &
        aprun -n 2 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
        aprun -n 2 lammps nx=12 ny=12 steps=2 interval=4 &
        wait
    "#;
    let wf = script_to_workflow(script).unwrap();
    let report = wf.run_with(RunOptions::default()).unwrap();
    assert_eq!(report.components.len(), 4);
    for c in &report.components {
        assert_eq!(c.stats.steps, 2, "{} steps", c.label);
    }
    // The sim stream carried data to the select.
    let dump = report
        .streams
        .iter()
        .find(|s| s.stream == "dump.custom.fp")
        .unwrap();
    assert!(dump.bytes_written > 0);
    assert_eq!(dump.steps_consumed, 2);
}

#[test]
fn simulation_component_params_control_problem_size() {
    let mut wf = Workflow::new();
    wf.add(
        2,
        Simulation::new(SimCode::Gtcp)
            .param("slices", 6)
            .param("points", 10)
            .param("steps", 1)
            .param("interval", 2),
    );
    let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    wf.add_sink("end", 1, "gtcp.fp", move |_s, vars| {
        seen2.lock().push(vars["plasma"].shape.total_len());
    });
    wf.run_with(RunOptions::default()).unwrap();
    assert_eq!(seen.lock().clone(), vec![6 * 10 * 7]);
}
