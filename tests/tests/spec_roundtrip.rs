//! Round-trip guarantees of the declarative `.sbw` spec language: every
//! checked-in example launch script has a spec twin that plans
//! identically, lints clean, and — run through the very same loader
//! `sb-run` uses — produces byte-identical histogram files on both the
//! in-proc and TCP backends. Plus the reactive-trigger regression: a
//! seeded histogram spike provably flips a TemporalMean's output stride
//! mid-run.

use std::path::Path;

use sb_data::{Buffer, Shape, Variable};
use sb_stream::tcp::TcpBroker;
use sb_stream::StreamHub;
use smartblock::analysis::{lint_spec, LintConfig};
use smartblock::distributed::{load_workflow_source, LoadedScript, SourceKind};
use smartblock::prelude::*;
use smartblock::ScriptDirectives;

/// Every checked-in example script, by stem: `examples/scripts/<stem>.sb`
/// twins with `examples/specs/<stem>.sbw`.
const PAIRS: [&str; 4] = [
    "gromacs_spread",
    "gromacs_tcp",
    "gtcp_pressure",
    "lammps_velocity",
];

fn examples_dir() -> String {
    format!("{}/../examples", env!("CARGO_MANIFEST_DIR"))
}

fn read_example(rel: &str) -> String {
    let path = format!("{}/{rel}", examples_dir());
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn load_example(rel: &str) -> LoadedScript {
    let text = read_example(rel);
    load_workflow_source(rel, &text).unwrap_or_else(|e| panic!("{rel}: {e}"))
}

/// Directive equality modulo source lines (a spec table and a `#@` line
/// necessarily sit at different line numbers).
fn policies(d: &ScriptDirectives) -> Vec<(String, FaultPolicy)> {
    d.policies
        .iter()
        .map(|p| (p.label.clone(), p.policy.clone()))
        .collect()
}

fn processes(d: &ScriptDirectives) -> Vec<(String, Vec<String>)> {
    d.processes
        .iter()
        .map(|p| (p.name.clone(), p.members.clone()))
        .collect()
}

/// Every `.sb` script and its `.sbw` twin resolve — through the one
/// loader `sb-lint`, `sb-run`, and the library share — to the same plan:
/// same labels, ranks, programs, per-component options, transport,
/// policies, and process partition.
#[test]
fn spec_twins_plan_identically_to_their_scripts() {
    for stem in PAIRS {
        let script = load_example(&format!("scripts/{stem}.sb"));
        let spec = load_example(&format!("specs/{stem}.sbw"));
        assert!(matches!(script.kind, SourceKind::LaunchScript), "{stem}");
        assert!(matches!(spec.kind, SourceKind::Spec), "{stem}");
        assert_eq!(script.plan.len(), spec.plan.len(), "{stem}");
        for (a, b) in script.plan.iter().zip(&spec.plan) {
            assert_eq!(a.label, b.label, "{stem}");
            assert_eq!(a.nranks, b.nranks, "{stem}: {}", a.label);
            assert_eq!(a.entry.program, b.entry.program, "{stem}: {}", a.label);
            assert_eq!(a.entry.options, b.entry.options, "{stem}: {}", a.label);
        }
        assert_eq!(
            script.directives.transport, spec.directives.transport,
            "{stem}"
        );
        assert_eq!(
            policies(&script.directives),
            policies(&spec.directives),
            "{stem}"
        );
        assert_eq!(
            processes(&script.directives),
            processes(&spec.directives),
            "{stem}"
        );
    }
}

/// The checked-in spec twins are lint-clean at default levels — warnings
/// included, so CI's `--deny-warnings` sweep over `examples/specs` stays
/// green.
#[test]
fn spec_twins_lint_clean_under_deny_warnings() {
    for stem in PAIRS {
        let rel = format!("specs/{stem}.sbw");
        let report = lint_spec(&rel, &read_example(&rel), &LintConfig::new());
        assert!(
            report.diagnostics.is_empty(),
            "{rel}:\n{}",
            report.render_text()
        );
    }
}

fn run_whole(loaded: &LoadedScript) -> WorkflowReport {
    let wf = loaded
        .workflow(StreamHub::new(), &[])
        .unwrap_or_else(|e| panic!("{e}"));
    wf.run_with(RunOptions::new()).unwrap()
}

/// Byte-compares a run's histogram file against the recorded golden
/// (record with `SB_UPDATE_GOLDENS=1`).
fn assert_matches_golden(stem: &str, bytes: &[u8]) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("golden/{stem}_hist.txt"));
    if std::env::var_os("SB_UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, bytes).unwrap();
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("cannot read golden {path:?}: {e} (SB_UPDATE_GOLDENS=1 records it)")
    });
    assert_eq!(
        bytes,
        &golden[..],
        "{stem}: histogram file diverged from the golden at {path:?}"
    );
}

/// Running a script and its spec twin writes byte-identical histogram
/// files, and both match the recorded goldens. One test covers all three
/// file-writing pairs because they share their `/tmp` endpoint paths with
/// nothing else — the spec twin must use the *same* argument vector as
/// the script to count as a twin.
#[test]
fn script_and_spec_runs_write_identical_histogram_files() {
    for (stem, file) in [
        ("gromacs_spread", "/tmp/gromacs_spread_hist.txt"),
        ("gtcp_pressure", "/tmp/gtcp_pressure_hist.txt"),
        ("lammps_velocity", "/tmp/lammps_velocity_hist.txt"),
    ] {
        run_whole(&load_example(&format!("scripts/{stem}.sb")));
        let from_script = std::fs::read(file).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(!from_script.is_empty(), "{stem}: script run wrote nothing");

        run_whole(&load_example(&format!("specs/{stem}.sbw")));
        let from_spec = std::fs::read(file).unwrap_or_else(|e| panic!("{file}: {e}"));

        assert_eq!(
            from_script, from_spec,
            "{stem}: spec run diverged from script run"
        );
        assert_matches_golden(stem, &from_spec);
    }
}

/// The gromacs_spread spec, split across two TCP-connected processes the
/// way `sb-run --serve`/`--connect` splits it, writes the same bytes the
/// single-process script run writes. Output paths are rewritten so this
/// test never races the in-proc comparison above on `/tmp`.
#[test]
fn spec_split_across_tcp_matches_the_in_proc_script_run() {
    const REF: &str = "/tmp/gromacs_spread_hist_ref.txt";
    const TCP: &str = "/tmp/gromacs_spread_hist_tcp.txt";
    let script_text =
        read_example("scripts/gromacs_spread.sb").replace("/tmp/gromacs_spread_hist.txt", REF);
    let spec_text =
        read_example("specs/gromacs_spread.sbw").replace("/tmp/gromacs_spread_hist.txt", TCP);
    let script = load_workflow_source("gromacs_spread.sb", &script_text).unwrap();
    let spec = load_workflow_source("gromacs_spread.sbw", &spec_text).unwrap();

    run_whole(&script);
    let reference = std::fs::read(REF).unwrap();
    assert!(!reference.is_empty());

    let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
    // "Process" A: the simulation, over its own TCP connection.
    let sim_spec = spec.clone();
    let sim_url = broker.url();
    let sim = std::thread::spawn(move || {
        let hub = StreamHub::connect(&sim_url).unwrap();
        let wf = sim_spec.workflow(hub, &["gromacs".to_string()]).unwrap();
        wf.run_with(RunOptions::new().with_validation(Validation::Skip))
            .expect("simulation side")
    });
    // "Process" B: the analysis chain, over another connection.
    let hub = StreamHub::connect(&broker.url()).unwrap();
    let wf = spec
        .workflow(hub, &["magnitude".to_string(), "histogram".to_string()])
        .unwrap();
    wf.run_with(RunOptions::new().with_validation(Validation::Skip))
        .expect("analysis side");
    sim.join().unwrap();

    let over_tcp = std::fs::read(TCP).unwrap();
    assert_eq!(
        over_tcp, reference,
        "gromacs_spread over TCP diverged from the in-proc run"
    );
}

/// The reactive-trigger regression the spec language exists for: a seeded
/// spike in the histogram's input provably flips a TemporalMean's output
/// stride mid-run.
///
/// Topology: source -> temporal-mean (rendezvous output) -> histogram.
/// The rendezvous hand-off makes the flip step exact: temporal-mean's
/// `end_step(k)` returns only after the histogram *releases* step `k`,
/// and the histogram publishes its signals (firing the trigger) before
/// that release. So when the spike at step 3 fires the trigger, the mean
/// has published exactly steps 0..=3 at stride 1, and every later
/// decimation decision observes the new stride — the histogram sees
/// exactly 4 steps out of 6.
#[test]
fn seeded_spike_trigger_flips_temporal_mean_stride_mid_run() {
    const STEPS: u64 = 6;
    const SPIKE_STEP: u64 = 3;
    let mut wf = Workflow::new();
    wf.add_source("sim", 1, "sim.fp", |step| {
        (step < STEPS).then(|| {
            // Quiet steps stay in (0, 1]; the spike step peaks at 100.
            let peak = if step == SPIKE_STEP { 100.0 } else { 1.0 };
            let data: Vec<f64> = (0..16).map(|i| peak * (i + 1) as f64 / 16.0).collect();
            Variable::new("vals", Shape::of(&[("cells", 16)]), Buffer::from(data)).unwrap()
        })
    });
    let mut mean = TemporalMean::new(("sim.fp", "vals"), 1, ("tm.fp", "smoothed"));
    mean.writer_options = WriterOptions::rendezvous();
    wf.add(1, mean);
    let hist = Histogram::new(("tm.fp", "smoothed"), 8);
    let results = hist.results_handle();
    wf.add(1, hist);
    wf.add_trigger(Trigger::new(
        "histogram",
        "max",
        TriggerOp::Gt,
        50.0,
        TriggerAction::SetOutputStride {
            target: "temporal-mean".into(),
            stride: 1000,
        },
    ));

    let report = wf.run_with(RunOptions::new()).unwrap();

    assert_eq!(report.triggers.len(), 1, "{:?}", report.triggers);
    let fire = &report.triggers[0];
    assert_eq!(fire.step, SPIKE_STEP);
    assert_eq!(fire.value, 100.0);
    assert!(fire.applied, "stride retarget was not applied: {fire:?}");

    // The mean consumed every input step; only its publishing decimated.
    assert_eq!(
        report.component("temporal-mean").unwrap().stats.steps,
        STEPS
    );
    assert_eq!(
        report.component("histogram").unwrap().stats.steps,
        SPIKE_STEP + 1,
        "stride flip did not take effect at the spike step"
    );
    let results = results.lock();
    assert_eq!(results.len() as u64, SPIKE_STEP + 1);
    assert_eq!(
        results.last().unwrap().max,
        100.0,
        "spike step was published"
    );
}

/// The same flip, driven end-to-end from `.sbw` text: a `[[trigger]]`
/// clause declared in a spec reaches the running workflow through
/// `Workflow::from_spec_text`. The always-true threshold fires on the
/// first histogram step, so the mean publishes exactly one step.
#[test]
fn spec_declared_trigger_flips_stride_end_to_end() {
    let report = Workflow::from_spec_text(
        r#"
[workflow]
name = "trigger-demo"

[[component]]
program = "gromacs"
args = ["chains=4", "len=4", "steps=3", "interval=2"]

[[component]]
program = "magnitude"
args = ["gromacs.fp", "coords", "gmag.fp", "radii"]

[[component]]
program = "temporal-mean"
args = ["gmag.fp", "radii", "1", "tm.fp", "smoothed"]
rendezvous = true

[[component]]
program = "histogram"
args = ["tm.fp", "smoothed", "8"]

[[trigger]]
when = "histogram.max > -1e300"
then = "set_output_stride temporal-mean 1000"
"#,
    )
    .unwrap_or_else(|e| panic!("{e}"))
    .run_with(RunOptions::new())
    .unwrap();

    assert_eq!(report.triggers.len(), 1, "{:?}", report.triggers);
    assert_eq!(report.triggers[0].step, 0);
    assert!(report.triggers[0].applied);
    assert_eq!(report.component("temporal-mean").unwrap().stats.steps, 3);
    assert_eq!(
        report.component("histogram").unwrap().stats.steps,
        1,
        "the first-step flip should decimate every later publish"
    );
}
