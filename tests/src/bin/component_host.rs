//! Helper process for the real-process chaos tests: runs the source side
//! of the chaos pipeline against a broker in another process — TCP or
//! shared-memory, by URL scheme — optionally dying mid-run with no cleanup
//! at all. That is the moral equivalent of a SIGKILL as seen by the
//! broker: a socket EOF with no close/abandon terminator over TCP, a dead
//! pid behind a quiet ring over shm.
//!
//! Usage: `component_host (tcp://HOST:PORT | shm://DIR) STEPS [abort-at=N]`

use sb_integration_tests::chaos_coords;
use smartblock::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let usage = "usage: component_host (tcp://HOST:PORT | shm://DIR) STEPS [abort-at=N]";
    let url = args.next().expect(usage);
    let steps: u64 = args.next().expect(usage).parse().expect(usage);
    let abort_at: Option<u64> = args.next().map(|a| {
        a.strip_prefix("abort-at=")
            .expect(usage)
            .parse()
            .expect(usage)
    });

    let hub = StreamHub::connect(&url).expect("connect to broker");
    let mut wf = Workflow::with_hub(hub);
    wf.add_source("gen", 1, "c.fp", move |step| {
        if Some(step) == abort_at {
            // Die like a killed process: no unwinding, no destructors, no
            // EOS — the broker learns about it only from the socket EOF.
            std::process::abort();
        }
        (step < steps).then(|| chaos_coords(step, 8))
    });
    // This process holds one component of a cross-process workflow; the
    // wiring dangles into the peer by design, so validation is skipped.
    wf.run_with(RunOptions::new().with_validation(Validation::Skip))
        .expect("source workflow");
}
