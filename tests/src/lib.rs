//! Shared helpers for the cross-crate integration tests: serial reference
//! computations the workflow outputs are checked against.

use sb_comm::launch;
use sb_data::{Buffer, Shape, Variable};
use sb_sims::driver::SimRank;
use sb_sims::{GtcpConfig, GtcpSim, LammpsConfig, LammpsSim};
use smartblock::histogram::bin_counts;
use smartblock::HistogramResult;

/// Deterministic per-step coordinates for the chaos pipelines. Shared with
/// the `component_host` helper binary so a source running in another OS
/// process produces exactly the values an in-proc golden run produces.
pub fn chaos_coords(step: u64, rows: usize) -> Variable {
    let data: Vec<f64> = (0..rows * 3).map(|i| i as f64 + step as f64).collect();
    Variable::new(
        "coords",
        Shape::of(&[("n", rows), ("d", 3)]),
        Buffer::F64(data),
    )
    .unwrap()
}

/// Reference histogram of a value set: global min/max then equal-width
/// bins, exactly the Histogram component's contract.
pub fn reference_histogram(step: u64, values: &[f64], bins: usize) -> HistogramResult {
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
            (a.min(v), b.max(v))
        });
    let (counts, nan_count) = bin_counts(values, min, max, bins);
    HistogramResult {
        step,
        min,
        max,
        counts,
        nan_count,
    }
}

/// Runs the mini-LAMMPS crack serially and returns, per coarse step, the
/// velocity magnitudes of every particle — the quantity the paper's LAMMPS
/// workflow histograms.
pub fn serial_lammps_magnitudes(cfg: LammpsConfig, io_steps: u64, substeps: u64) -> Vec<Vec<f64>> {
    launch(1, move |comm| {
        let mut sim = LammpsSim::new(cfg.clone(), 0, 1);
        let mut out = Vec::new();
        for _ in 0..io_steps {
            for _ in 0..substeps {
                sim.substep(&comm);
            }
            out.push(
                sim.velocities()
                    .iter()
                    .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
                    .collect(),
            );
        }
        out
    })
    .unwrap()
    .remove(0)
}

/// Runs the mini-GTCP serially and returns, per coarse step, the
/// perpendicular pressure at every grid point of the torus.
pub fn serial_gtcp_pperp(cfg: GtcpConfig, io_steps: u64, substeps: u64) -> Vec<Vec<f64>> {
    launch(1, move |comm| {
        let mut sim = GtcpSim::new(cfg.clone(), 0, 1);
        let mut out = Vec::new();
        for _ in 0..io_steps {
            for _ in 0..substeps {
                sim.substep(&comm);
            }
            let chunk = sim.output_chunk();
            let nprops = sb_sims::gtcp::GTCP_PROPERTIES.len();
            let pperp: Vec<f64> = (0..chunk.data.len() / nprops)
                .map(|cell| {
                    chunk
                        .data
                        .get_f64(cell * nprops + sb_sims::gtcp::P_PERP_INDEX)
                })
                .collect();
            out.push(pperp);
        }
        out
    })
    .unwrap()
    .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_histogram_bins_everything() {
        let r = reference_histogram(3, &[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(r.step, 3);
        assert_eq!(r.total(), 4);
        assert_eq!(r.min, 0.0);
        assert_eq!(r.max, 3.0);
    }

    #[test]
    fn serial_runners_produce_per_step_values() {
        let mags = serial_lammps_magnitudes(
            LammpsConfig {
                nx: 8,
                ny: 8,
                ..LammpsConfig::default()
            },
            2,
            3,
        );
        assert_eq!(mags.len(), 2);
        assert!(!mags[0].is_empty());

        let pperp = serial_gtcp_pperp(
            GtcpConfig {
                n_slices: 4,
                n_points: 8,
                ..GtcpConfig::default()
            },
            2,
            3,
        );
        assert_eq!(pperp.len(), 2);
        assert_eq!(pperp[0].len(), 32);
    }
}
